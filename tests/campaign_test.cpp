// Campaign subsystem tests (DESIGN.md §13): coordinator supervision
// (crash retry, heartbeat kill, retry-budget degradation), kill-and-
// resume checkpoint determinism, checkpoint/config round-trips and
// corruption rejection, atomic file replacement, and sweep-campaign
// parity with the in-process grid.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/coordinator.hpp"
#include "campaign/fuzz_campaign.hpp"
#include "campaign/sweep_campaign.hpp"
#include "check/harness.hpp"
#include "runner/ipc.hpp"
#include "snapshot/atomic_file.hpp"
#include "snapshot/blob.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define MVQOE_TEST_FORK 1
#else
#define MVQOE_TEST_FORK 0
#endif

namespace {

using namespace mvqoe;

/// Unique scratch path under the test working directory, cleaned up on
/// destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("campaign_test_" + name + "_" + std::to_string(::testing::UnitTest::GetInstance()
                                                                 ->random_seed()) +
              ".mvqs") {
    std::remove(path_.c_str());
  }
  ~ScratchFile() {
    std::remove(path_.c_str());
    std::remove(snapshot::atomic_temp_path(path_).c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Trivial deterministic unit: payload is a pure function of the index.
std::string unit_payload(std::uint64_t unit) {
  return "unit-" + std::to_string(unit * unit + 7);
}

campaign::CampaignOptions fast_options() {
  campaign::CampaignOptions opts;
  opts.procs = 3;
  opts.shard_size = 4;
  opts.max_attempts = 3;
  opts.backoff_ms = 5;
  return opts;
}

check::FuzzOptions small_fuzz() {
  check::FuzzOptions opts;
  opts.seed = 11;
  opts.runs = 12;
  opts.jobs = 1;
  opts.generator.max_duration_s = 4;
  opts.check.meta_determinism = false;
  return opts;
}

// --- Coordinator ------------------------------------------------------------

TEST(Coordinator, RunsAllUnitsAcrossProcesses) {
  const auto result = campaign::run_campaign(17, unit_payload, fast_options());
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.units_done, 17u);
  EXPECT_EQ(result.units_from_checkpoint, 0u);
  ASSERT_EQ(result.payloads.size(), 17u);
  for (std::uint64_t i = 0; i < 17; ++i) {
    EXPECT_TRUE(result.completed[i]);
    EXPECT_EQ(result.payloads[i], unit_payload(i));
  }
  // ceil(17 / 4) shards, all completed first try.
  ASSERT_EQ(result.shards.size(), 5u);
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.status, campaign::ShardStatus::Completed);
    EXPECT_EQ(shard.attempts, 1);
  }
}

TEST(Coordinator, ZeroUnitsIsCompleteAndEmpty) {
  const auto result = campaign::run_campaign(0, unit_payload, fast_options());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.units_done, 0u);
  EXPECT_TRUE(result.shards.empty());
}

TEST(Coordinator, InterruptFlagStopsBeforeWork) {
  static volatile std::sig_atomic_t flag = 1;
  auto opts = fast_options();
  opts.interrupt = &flag;
  const auto result = campaign::run_campaign(8, unit_payload, opts);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.units_done, 0u);
}

#if MVQOE_TEST_FORK

TEST(Coordinator, CrashedWorkerIsRetriedAndRecovers) {
  auto opts = fast_options();
  opts.hooks.abort_unit = 5;      // second shard [4..8) dies on attempt 1
  opts.hooks.abort_attempts = 1;
  const auto result = campaign::run_campaign(10, unit_payload, opts);
  ASSERT_TRUE(result.complete);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(result.payloads[i], unit_payload(i));
  bool retried = false;
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.status, campaign::ShardStatus::Completed);
    if (shard.first_unit == 4) {
      EXPECT_EQ(shard.attempts, 2);
      retried = true;
    }
  }
  EXPECT_TRUE(retried);
}

TEST(Coordinator, CrashSalvagesUnitsDeliveredBeforeDeath) {
  auto opts = fast_options();
  opts.procs = 1;
  opts.shard_size = 8;
  opts.hooks.abort_unit = 6;  // units 0..5 stream back before the kill
  opts.hooks.abort_attempts = 1;
  const auto result = campaign::run_campaign(8, unit_payload, opts);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_EQ(result.shards[0].attempts, 2);
}

TEST(Coordinator, RetryBudgetExhaustionDegradesNotHangs) {
  auto opts = fast_options();
  opts.max_attempts = 2;
  opts.hooks.abort_unit = 5;
  opts.hooks.abort_attempts = 99;  // every attempt dies
  const auto result = campaign::run_campaign(10, unit_payload, opts);
  EXPECT_FALSE(result.complete);
  // The poisoned shard loses its remainder from the crash point on
  // (units 5..7 of shard [4..8)); everything delivered before each
  // crash and every other shard survives.
  EXPECT_EQ(result.units_done, 7u);
  EXPECT_TRUE(result.completed[4]);
  EXPECT_FALSE(result.completed[5]);
  EXPECT_FALSE(result.completed[6]);
  EXPECT_FALSE(result.completed[7]);
  bool failed_shard = false;
  for (const auto& shard : result.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      failed_shard = true;
      EXPECT_EQ(shard.attempts, 2);
      EXPECT_NE(shard.error.find("signal"), std::string::npos) << shard.error;
    }
  }
  EXPECT_TRUE(failed_shard);
}

TEST(Coordinator, HungWorkerIsKilledByHeartbeatAndRetried) {
  auto opts = fast_options();
  opts.heartbeat_timeout_ms = 300;
  opts.hooks.hang_unit = 2;
  opts.hooks.hang_attempts = 1;
  const auto result = campaign::run_campaign(6, unit_payload, opts);
  ASSERT_TRUE(result.complete);
  bool retried = false;
  for (const auto& shard : result.shards) {
    if (shard.first_unit == 0) {
      EXPECT_GE(shard.attempts, 2);
      retried = true;
    }
  }
  EXPECT_TRUE(retried);
}

TEST(Coordinator, UnitExceptionSurfacesAsWorkerExit) {
  auto opts = fast_options();
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  const auto fn = [](std::uint64_t unit) -> std::string {
    if (unit == 3) throw std::runtime_error("poisoned unit");
    return unit_payload(unit);
  };
  const auto result = campaign::run_campaign(6, fn, opts);
  EXPECT_FALSE(result.complete);
  bool failed_shard = false;
  for (const auto& shard : result.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      failed_shard = true;
      EXPECT_NE(shard.error.find("code 3"), std::string::npos) << shard.error;
    }
  }
  EXPECT_TRUE(failed_shard);
}

#endif  // MVQOE_TEST_FORK

TEST(Coordinator, CheckpointAndResumeCoverAllUnits) {
  ScratchFile state("resume");
  // Phase 1: run with an interrupt raised mid-campaign so only part of
  // the work lands in the checkpoint.
  static volatile std::sig_atomic_t flag = 0;
  flag = 0;
  auto opts = fast_options();
  opts.procs = 1;
  opts.state_path = state.path();
  opts.interrupt = &flag;
  const auto interrupt_after_one = [&](std::uint64_t unit) {
    if (unit == 5) flag = 1;  // trip the flag from inside a worker-side call
    return unit_payload(unit);
  };
  const auto partial = campaign::run_campaign(12, interrupt_after_one, opts);
  // The flag is process-wide only in the serial fallback; under fork the
  // coordinator may still finish. Force a useful precondition either way.
  if (!partial.complete) {
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.units_done, 12u);
  }

  // Phase 2: resume (or re-run over the complete checkpoint — also legal).
  auto resume_opts = fast_options();
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  const auto resumed = campaign::run_campaign(12, unit_payload, resume_opts);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.units_from_checkpoint, partial.units_done);
  for (std::uint64_t i = 0; i < 12; ++i) EXPECT_EQ(resumed.payloads[i], unit_payload(i));
}

TEST(Coordinator, ResumeRejectsFingerprintMismatch) {
  ScratchFile state("fingerprint");
  auto opts = fast_options();
  opts.state_path = state.path();
  opts.fingerprint = 0x1111;
  ASSERT_TRUE(campaign::run_campaign(4, unit_payload, opts).complete);

  auto resume_opts = fast_options();
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  resume_opts.fingerprint = 0x2222;
  EXPECT_THROW(campaign::run_campaign(4, unit_payload, resume_opts), std::runtime_error);
}

TEST(Coordinator, ResumeRejectsUnitCountMismatch) {
  ScratchFile state("unitcount");
  auto opts = fast_options();
  opts.state_path = state.path();
  ASSERT_TRUE(campaign::run_campaign(4, unit_payload, opts).complete);

  auto resume_opts = fast_options();
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  EXPECT_THROW(campaign::run_campaign(9, unit_payload, resume_opts), std::runtime_error);
}

// --- Checkpoint blob --------------------------------------------------------

campaign::CheckpointState sample_state() {
  campaign::CheckpointState state;
  state.fingerprint = 0xfeedface;
  state.config = "cfg-bytes";
  state.total_units = 9;
  state.units = {{0, "a"}, {3, "bb"}, {8, ""}};
  campaign::ShardOutcome shard;
  shard.first_unit = 0;
  shard.unit_count = 4;
  shard.attempts = 2;
  shard.status = campaign::ShardStatus::Failed;
  shard.error = "worker killed by signal 9";
  state.shards.push_back(shard);
  return state;
}

TEST(Checkpoint, RoundTripsThroughBlob) {
  const auto state = sample_state();
  const auto loaded = campaign::load_checkpoint(campaign::save_checkpoint(state));
  EXPECT_EQ(loaded.fingerprint, state.fingerprint);
  EXPECT_EQ(loaded.config, state.config);
  EXPECT_EQ(loaded.total_units, state.total_units);
  EXPECT_EQ(loaded.units, state.units);
  ASSERT_EQ(loaded.shards.size(), 1u);
  EXPECT_EQ(loaded.shards[0].attempts, 2);
  EXPECT_EQ(loaded.shards[0].status, campaign::ShardStatus::Failed);
  EXPECT_EQ(loaded.shards[0].error, state.shards[0].error);
}

TEST(Checkpoint, RejectsOutOfOrderUnits) {
  auto state = sample_state();
  state.units = {{3, "x"}, {1, "y"}};
  EXPECT_THROW(campaign::load_checkpoint(campaign::save_checkpoint(state)), std::runtime_error);
}

TEST(Checkpoint, RejectsUnitIndexOutOfRange) {
  auto state = sample_state();
  state.units = {{0, "x"}, {9, "y"}};  // total_units == 9: max index is 8
  EXPECT_THROW(campaign::load_checkpoint(campaign::save_checkpoint(state)), std::runtime_error);
}

TEST(Checkpoint, ReadFileWrapsDiagnosticsWithPath) {
  ScratchFile file("missing");
  try {
    campaign::read_checkpoint_file(file.path());
    FAIL() << "expected a throw for a missing checkpoint";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(file.path()), std::string::npos) << e.what();
  }
}

// --- Atomic writes + hardened blob parsing ----------------------------------

TEST(AtomicFile, ReplacesWithoutTempResidue) {
  ScratchFile file("atomic");
  ASSERT_TRUE(snapshot::atomic_write_file(file.path(), "first"));
  ASSERT_TRUE(snapshot::atomic_write_file(file.path(), "second"));
  std::FILE* f = std::fopen(file.path().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "second");
  EXPECT_FALSE(std::filesystem::exists(snapshot::atomic_temp_path(file.path())));
}

TEST(AtomicFile, FailureLeavesExistingDestinationIntact) {
  // Writing under a nonexistent directory fails without touching
  // anything and without leaving a temp file behind.
  const std::string path = "campaign_test_no_such_dir/state.mvqs";
  EXPECT_FALSE(snapshot::atomic_write_file(path, "bytes"));
  EXPECT_FALSE(std::filesystem::exists(snapshot::atomic_temp_path(path)));
}

TEST(Blob, ShortWriteIsRejectedOnRead) {
  ScratchFile file("short");
  snapshot::Snapshot snap;
  snap.put(snapshot::tag("TEST"), std::string(64, 'x'));
  const std::string full = snap.serialize();
  // Simulate the pre-atomic-write failure mode: a truncated file at the
  // destination. Every truncation point must throw, never misparse.
  for (const std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{13}}) {
    ASSERT_TRUE(snapshot::atomic_write_file(file.path(), std::string_view(full).substr(0, cut)));
    EXPECT_THROW(snapshot::Snapshot::read_file(file.path()), std::runtime_error) << cut;
  }
}

TEST(Blob, EveryPrefixTruncationThrows) {
  snapshot::Snapshot snap;
  snap.put(snapshot::tag("AAAA"), "payload-one");
  snap.put(snapshot::tag("BBBB"), "payload-two-longer");
  const std::string full = snap.serialize();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_THROW(snapshot::Snapshot::parse(std::string_view(full).substr(0, cut)),
                 std::runtime_error)
        << "prefix length " << cut;
  }
  EXPECT_NO_THROW(snapshot::Snapshot::parse(full));
}

TEST(Blob, SeededCorruptionNeverCrashes) {
  snapshot::Snapshot snap;
  snap.put(snapshot::tag("CAMP"), std::string(128, 'z'));
  const std::string full = snap.serialize();
  std::uint64_t rng = 0x243f6a8885a308d3ULL;  // fixed seed: deterministic
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng % 4);
    for (int f = 0; f < flips; ++f) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      mutated[(rng >> 33) % mutated.size()] ^= static_cast<char>(1 << ((rng >> 29) & 7));
    }
    // Must either parse (flip hit a payload byte) or throw — never UB.
    try {
      snapshot::Snapshot::parse(mutated);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Blob, TrailingGarbageIsRejected) {
  snapshot::Snapshot snap;
  snap.put(snapshot::tag("TEST"), "x");
  const std::string full = snap.serialize() + "garbage";
  EXPECT_THROW(snapshot::Snapshot::parse(full), std::runtime_error);
}

// --- Fuzz campaign ----------------------------------------------------------

TEST(FuzzCampaign, ConfigRoundTripsAndFingerprints) {
  check::FuzzOptions opts = small_fuzz();
  opts.perturb_run = 4;
  opts.check.perturb_at = sim::sec(3);
  const auto decoded = campaign::decode_fuzz_config(campaign::encode_fuzz_config(opts));
  EXPECT_EQ(decoded.seed, opts.seed);
  EXPECT_EQ(decoded.runs, opts.runs);
  EXPECT_EQ(decoded.generator.max_videos, opts.generator.max_videos);
  EXPECT_EQ(decoded.generator.max_duration_s, opts.generator.max_duration_s);
  EXPECT_EQ(decoded.check.meta_determinism, opts.check.meta_determinism);
  EXPECT_EQ(decoded.check.perturb_at, opts.check.perturb_at);
  EXPECT_EQ(decoded.perturb_run, opts.perturb_run);
  EXPECT_EQ(campaign::fuzz_config_fingerprint(decoded),
            campaign::fuzz_config_fingerprint(opts));
  // The parallelism knob is deliberately outside the fingerprint.
  check::FuzzOptions other_jobs = opts;
  other_jobs.jobs = 16;
  EXPECT_EQ(campaign::fuzz_config_fingerprint(other_jobs),
            campaign::fuzz_config_fingerprint(opts));
  check::FuzzOptions other_seed = opts;
  other_seed.seed = 999;
  EXPECT_NE(campaign::fuzz_config_fingerprint(other_seed),
            campaign::fuzz_config_fingerprint(opts));
}

TEST(FuzzCampaign, DigestMatchesInProcessPool) {
  const check::FuzzOptions opts = small_fuzz();
  const check::FuzzSummary serial = check::run_fuzz(opts);

  auto copts = fast_options();
  const auto result = campaign::run_fuzz_campaign(opts, copts);
  ASSERT_TRUE(result.campaign.complete);
  EXPECT_EQ(result.summary.digest, serial.digest);
  EXPECT_EQ(result.summary.failed, serial.failed);
  EXPECT_EQ(result.summary.runs, serial.runs);
}

#if MVQOE_TEST_FORK

TEST(FuzzCampaign, DigestSurvivesWorkerCrashAndRetry) {
  const check::FuzzOptions opts = small_fuzz();
  const check::FuzzSummary serial = check::run_fuzz(opts);

  auto copts = fast_options();
  copts.hooks.abort_unit = 6;
  copts.hooks.abort_attempts = 1;
  const auto result = campaign::run_fuzz_campaign(opts, copts);
  ASSERT_TRUE(result.campaign.complete);
  EXPECT_EQ(result.summary.digest, serial.digest);
}

TEST(FuzzCampaign, KillResumeProducesIdenticalDigest) {
  const check::FuzzOptions opts = small_fuzz();
  const check::FuzzSummary serial = check::run_fuzz(opts);

  ScratchFile state("killresume");
  // The coordinator SIGKILLs itself right after its first progress
  // checkpoint — the kill -9 acceptance scenario, in-process. Fork so
  // the test survives the suicide.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto copts = fast_options();
    copts.procs = 2;
    copts.state_path = state.path();
    copts.hooks.kill_after_checkpoints = 1;
    (void)campaign::run_fuzz_campaign(opts, copts);
    ::_exit(0);  // unreachable: the hook kills the process first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The checkpoint written microseconds before the SIGKILL must load and
  // resume to the exact serial digest.
  const check::FuzzOptions recovered = campaign::load_fuzz_resume_config(state.path());
  EXPECT_EQ(recovered.seed, opts.seed);
  EXPECT_EQ(recovered.runs, opts.runs);

  auto resume_opts = fast_options();
  resume_opts.procs = 2;
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  const auto resumed = campaign::run_fuzz_campaign(recovered, resume_opts);
  ASSERT_TRUE(resumed.campaign.complete);
  EXPECT_GT(resumed.campaign.units_from_checkpoint, 0u);
  EXPECT_EQ(resumed.summary.digest, serial.digest);
}

#endif  // MVQOE_TEST_FORK

TEST(FuzzCampaign, DamagedCheckpointFailsWithDiagnosticNotUB) {
  ScratchFile state("damaged");
  // A complete, valid checkpoint...
  auto copts = fast_options();
  copts.state_path = state.path();
  const check::FuzzOptions opts = small_fuzz();
  ASSERT_TRUE(campaign::run_fuzz_campaign(opts, copts).campaign.complete);

  // ...then damaged in place: truncations and byte flips must all raise
  // a clean path-carrying diagnostic through --resume's load path.
  std::FILE* f = std::fopen(state.path().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes(1 << 20, '\0');
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);
  ASSERT_FALSE(bytes.empty());

  const auto expect_diagnostic = [&](const std::string& mutated) {
    ASSERT_TRUE(snapshot::atomic_write_file(state.path(), mutated));
    try {
      (void)campaign::load_fuzz_resume_config(state.path());
      // Some payload-byte flips still parse; that's fine — resume then
      // fails later on the fingerprint check instead.
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find(state.path()), std::string::npos) << e.what();
    }
  };
  expect_diagnostic(bytes.substr(0, bytes.size() / 2));
  expect_diagnostic(bytes.substr(0, 7));
  expect_diagnostic("");
  std::string flipped = bytes;
  flipped[0] ^= 0x5a;  // magic
  expect_diagnostic(flipped);
  flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x5a;  // somewhere inside the CAMP payload
  expect_diagnostic(flipped);
}

// --- Sweep campaign ---------------------------------------------------------

campaign::SweepCampaignSpec small_sweep() {
  campaign::SweepCampaignSpec spec;
  spec.family = "fig16";
  spec.duration_s = 4;
  spec.states = {mem::PressureLevel::Normal, mem::PressureLevel::Critical};
  spec.fps = {30, 60};
  spec.heights = {240, 480};
  spec.runs = 2;
  spec.seed = 77;
  return spec;
}

TEST(SweepCampaign, ConfigRoundTrips) {
  const auto spec = small_sweep();
  const auto decoded = campaign::decode_sweep_config(campaign::encode_sweep_config(spec));
  EXPECT_EQ(decoded.family, spec.family);
  EXPECT_EQ(decoded.duration_s, spec.duration_s);
  EXPECT_EQ(decoded.states, spec.states);
  EXPECT_EQ(decoded.fps, spec.fps);
  EXPECT_EQ(decoded.heights, spec.heights);
  EXPECT_EQ(decoded.runs, spec.runs);
  EXPECT_EQ(decoded.seed, spec.seed);
  EXPECT_EQ(campaign::sweep_config_fingerprint(decoded),
            campaign::sweep_config_fingerprint(spec));
}

TEST(SweepCampaign, MatchesInProcessGridByteForByte) {
  const auto spec = small_sweep();
  // The in-process reference: same proto shape the campaign builds.
  scenario::ScenarioSpec proto;
  proto.family = spec.family;
  scenario::VideoWorkloadSpec session;
  session.duration_s = spec.duration_s;
  proto.workloads.emplace_back(std::move(session));
  const auto reference = runner::run_sweep_grid_shared(
      proto, spec.states, spec.fps, spec.heights, spec.runs, 1, spec.seed,
      runner::SweepMode::Cold);

  auto copts = fast_options();
  copts.shard_size = 1;
  const auto result = campaign::run_sweep_campaign(spec, copts);
  ASSERT_TRUE(result.campaign.complete);
  ASSERT_EQ(result.cells.size(), reference.size());

  const std::string reference_json =
      runner::sweep_json("campaign_parity", reference, spec.runs, 1, spec.seed);
  const std::string campaign_json =
      runner::sweep_json("campaign_parity", result.cells, spec.runs, 1, spec.seed);
  EXPECT_EQ(campaign_json, reference_json);
}

TEST(SweepCampaign, ResumeKeepsDigest) {
  const auto spec = small_sweep();
  ScratchFile state("sweepresume");
  auto copts = fast_options();
  copts.shard_size = 1;
  copts.state_path = state.path();
  const auto first = campaign::run_sweep_campaign(spec, copts);
  ASSERT_TRUE(first.campaign.complete);

  // Resume over the complete checkpoint: zero re-execution, same digest.
  const auto recovered = campaign::load_sweep_resume_config(state.path());
  auto resume_opts = fast_options();
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  const auto resumed = campaign::run_sweep_campaign(recovered, resume_opts);
  ASSERT_TRUE(resumed.campaign.complete);
  EXPECT_EQ(resumed.campaign.units_from_checkpoint, campaign::sweep_total_units(spec));
  EXPECT_EQ(resumed.digest, first.digest);
}

}  // namespace
