#!/bin/sh
# Fleet CLI determinism smoke (ISSUE 8 acceptance scenario): the same
# fleet run executed serially, under --procs 4, and SIGKILLed partway
# (--kill-after-checkpoints) then resumed must print the same digest
# and write byte-identical Figs 2-6 report JSON. Also round-trips the
# --save blob through `mvqoe_fleet report`.
set -u

FLEET="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mvqoe_fleet_smoke.XXXXXX")" || exit 1
trap 'rm -rf "$WORK"' EXIT

STATE="$WORK/fleet.mvqs"
SPEC="--devices 1500 --seed 5 --session-s 3 --sample-period 2 --warmup-s 1 --shard-size 128"

digest_of() {
  sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$1" | tail -1
}

echo "== uninterrupted serial run =="
# shellcheck disable=SC2086
"$FLEET" run $SPEC --report "$WORK/serial.json" --save "$WORK/serial.mvqs" \
    > "$WORK/serial.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "serial run failed with exit $status"
  cat "$WORK/serial.log"
  exit 1
fi
serial_digest=$(digest_of "$WORK/serial.log")
echo "serial digest: $serial_digest"
[ -n "$serial_digest" ] || { cat "$WORK/serial.log"; exit 1; }

echo "== report subcommand re-renders the saved blob =="
"$FLEET" report "$WORK/serial.mvqs" --out "$WORK/reprint.json" \
    > "$WORK/report.log" 2>&1 || { cat "$WORK/report.log"; exit 1; }
cmp -s "$WORK/serial.json" "$WORK/reprint.json" || {
  echo "report-from-blob differs from the run's own report"
  exit 1
}

echo "== --procs 4 run =="
# shellcheck disable=SC2086
"$FLEET" run $SPEC --procs 4 --report "$WORK/procs.json" \
    > "$WORK/procs.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "procs run failed with exit $status"
  cat "$WORK/procs.log"
  exit 1
fi
procs_digest=$(digest_of "$WORK/procs.log")
echo "procs digest:  $procs_digest"
if [ "$procs_digest" != "$serial_digest" ]; then
  echo "DIGEST MISMATCH: serial=$serial_digest procs=$procs_digest"
  exit 1
fi
cmp -s "$WORK/serial.json" "$WORK/procs.json" || {
  echo "procs report differs from serial report"
  exit 1
}

echo "== fleet SIGKILLed after 1 progress checkpoint =="
# shellcheck disable=SC2086
"$FLEET" run $SPEC --procs 4 --state "$STATE" --kill-after-checkpoints 1 \
    > "$WORK/killed.log" 2>&1
status=$?
# 137 = 128 + SIGKILL: the coordinator must actually die, not exit.
if [ $status -ne 137 ]; then
  echo "expected the fleet to die by SIGKILL (exit 137), got $status"
  cat "$WORK/killed.log"
  exit 1
fi
[ -f "$STATE" ] || { echo "no checkpoint at $STATE"; exit 1; }

echo "== resume from the checkpoint (spec comes from the blob) =="
"$FLEET" resume "$STATE" --procs 4 --report "$WORK/resumed.json" \
    > "$WORK/resume.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "resume failed with exit $status"
  cat "$WORK/resume.log"
  exit 1
fi
resumed_digest=$(digest_of "$WORK/resume.log")
echo "resumed digest: $resumed_digest"
if [ "$resumed_digest" != "$serial_digest" ]; then
  echo "DIGEST MISMATCH: serial=$serial_digest resumed=$resumed_digest"
  cat "$WORK/resume.log"
  exit 1
fi
cmp -s "$WORK/serial.json" "$WORK/resumed.json" || {
  echo "resumed report differs from serial report"
  exit 1
}

echo "OK: serial, --procs and kill-and-resume are byte-identical"
exit 0
