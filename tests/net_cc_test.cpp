// Differential congestion-control battery (DESIGN.md §17): the fifo
// lane must be byte-identical to the pre-refactor serial link, the four
// controllers must be pairwise distinguishable on identically-seeded
// workloads, and every controller must satisfy run-twice determinism,
// checkpoint-at-T restore identity and save/digest stability under rate
// steps, outages and mid-transfer cancels.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/harness.hpp"
#include "net/link.hpp"
#include "scenario/spec.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe {
namespace {

using net::Link;
using net::LinkConfig;
using net::NetSpec;
using sim::msec;

std::string link_bytes(const Link& link) {
  snapshot::ByteWriter w;
  link.save(w);
  return std::move(w).take();
}

// ---------- Factory and spec validation --------------------------------------

TEST(NetSpec, FactoryKnowsAllFourControllers) {
  const std::vector<std::string> names = net::cc_names();
  ASSERT_EQ(names, (std::vector<std::string>{"fifo", "cubic", "bbr", "c4"}));
  EXPECT_EQ(net::make_congestion_controller(NetSpec{}), nullptr);  // fifo = no flow engine
  for (const std::string& name : names) {
    if (name == "fifo") continue;
    const auto cc = net::make_congestion_controller(NetSpec{name, {}});
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
  }
  EXPECT_THROW(net::validate_net_spec(NetSpec{"reno", {}}), std::invalid_argument);
}

TEST(NetSpec, DefaultSpecIsDefaultAndTunedSpecIsNot) {
  EXPECT_TRUE(NetSpec{}.is_default());
  EXPECT_FALSE((NetSpec{"cubic", {}}).is_default());
  EXPECT_FALSE((NetSpec{"fifo", {{"mss", 1200.0}}}).is_default());
}

// ---------- Fifo lane: byte-identical to the pre-refactor link ---------------

/// Drive one link through the legacy repertoire: serialized transfers,
/// a mid-flight rate step, an outage window, a cancel and a timeout.
/// Returns the completion-order trace.
std::vector<sim::Time> drive_fifo(sim::Engine& engine, Link& link) {
  std::vector<sim::Time> done;
  const auto note = [&](bool) { done.push_back(engine.now()); };
  link.transfer(1'000'000, note);
  link.transfer(2'000'000, note);
  const net::TransferId victim = link.transfer(500'000, note);
  engine.run_until(msec(40));
  link.set_rate_mbps(20.0);
  engine.run_until(msec(120));
  link.set_down(true);
  engine.run_until(msec(300));
  link.set_down(false);
  link.cancel(victim);
  engine.run_until(sim::sec(1));
  link.transfer(250'000, note);
  engine.run();
  return done;
}

TEST(FifoIdentity, DefaultNetSpecIsByteIdenticalToTwoArgLink) {
  sim::Engine legacy_engine;
  Link legacy(legacy_engine, LinkConfig{});  // the pre-refactor signature
  sim::Engine spec_engine;
  Link with_spec(spec_engine, LinkConfig{}, NetSpec{});

  const std::vector<sim::Time> legacy_done = drive_fifo(legacy_engine, legacy);
  const std::vector<sim::Time> spec_done = drive_fifo(spec_engine, with_spec);

  EXPECT_FALSE(legacy.cc_mode());
  EXPECT_FALSE(with_spec.cc_mode());
  EXPECT_EQ(legacy_done, spec_done);
  // Same events, same engine sequence draws, same v1 snapshot bytes.
  EXPECT_EQ(legacy_engine.now(), spec_engine.now());
  EXPECT_EQ(link_bytes(legacy), link_bytes(with_spec));
  EXPECT_EQ(legacy.digest(), with_spec.digest());
}

TEST(FifoIdentity, FifoSectionIsVersionOne) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  const std::string bytes = link_bytes(link);
  snapshot::ByteReader r(bytes);
  EXPECT_EQ(r.u32(), 1u);  // pre-refactor section version, unchanged
}

// ---------- Differential: controllers are pairwise distinct ------------------

struct CcTrace {
  std::vector<sim::Time> completions;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t qdelay_samples = 0;
  sim::Time qdelay_max = 0;
};

/// The shared workload every controller runs: three concurrent flows on
/// a 16 Mbps bottleneck with a mid-run rate dip — enough contention that
/// the control law, not the link rate, decides the trace.
CcTrace drive_cc(const std::string& cc) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 16.0;
  Link link(engine, config, NetSpec{cc, {}});
  CcTrace trace;
  const auto note = [&](bool) { trace.completions.push_back(engine.now()); };
  link.transfer(1'500'000, note);
  link.transfer(1'000'000, note);
  link.transfer(750'000, note);
  engine.run_until(msec(400));
  link.set_rate_mbps(4.0);
  engine.run_until(msec(900));
  link.set_rate_mbps(16.0);
  engine.run();
  trace.bytes_delivered = link.bytes_delivered();
  trace.qdelay_samples = link.queue_delay().samples;
  trace.qdelay_max = link.queue_delay().max;
  return trace;
}

TEST(Differential, FourControllersProducePairwiseDistinctTraces) {
  std::vector<CcTrace> traces;
  for (const std::string& cc : net::cc_names()) {
    CcTrace trace = drive_cc(cc);
    ASSERT_EQ(trace.completions.size(), 3u) << cc << ": every flow must complete";
    EXPECT_EQ(trace.bytes_delivered, 3'250'000u) << cc;
    traces.push_back(std::move(trace));
  }
  const auto& names = net::cc_names();
  for (std::size_t a = 0; a < traces.size(); ++a) {
    for (std::size_t b = a + 1; b < traces.size(); ++b) {
      EXPECT_NE(traces[a].completions, traces[b].completions)
          << names[a] << " and " << names[b] << " are indistinguishable on the same seed";
    }
  }
  // Fifo serializes — no packet ever queues behind another flow's.
  EXPECT_EQ(traces[0].qdelay_samples, 0u);
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GT(traces[i].qdelay_samples, 0u) << names[i];
  }
}

TEST(Differential, ConcurrentFlowsShareTheBottleneck) {
  // Under fifo the second transfer only starts after the first finishes;
  // under any real controller both progress at once.
  sim::Engine engine;
  Link link(engine, LinkConfig{}, NetSpec{"cubic", {}});
  link.transfer(4'000'000, nullptr);
  link.transfer(4'000'000, nullptr);
  engine.run_until(msec(200));
  const auto stats = link.flow_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].delivered_bytes, 0u);
  EXPECT_GT(stats[1].delivered_bytes, 0u);
  engine.run();
  EXPECT_EQ(link.bytes_delivered(), 8'000'000u);
}

// ---------- Per-controller determinism and serialization ---------------------

class PerController : public ::testing::TestWithParam<std::string> {};

/// The churn repertoire for save/digest tests: rate steps, an outage,
/// a mid-transfer cancel, random loss while flows are in flight.
struct ChurnRun {
  std::string mid_bytes;
  std::uint64_t mid_digest = 0;
  std::string end_bytes;
  std::uint64_t end_digest = 0;
  std::vector<sim::Time> completions;
  std::uint64_t retired = 0;
  std::uint64_t delivered = 0;
};

ChurnRun drive_churn(const std::string& cc) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 16.0;
  Link link(engine, config, NetSpec{cc, {}});
  ChurnRun run;
  const auto note = [&](bool) { run.completions.push_back(engine.now()); };
  link.transfer(2'000'000, note);
  const net::TransferId victim = link.transfer(1'000'000, note);
  engine.run_until(msec(100));
  link.set_rate_mbps(6.0);
  if (link.cc_mode()) link.set_loss_rate(0.05);
  engine.run_until(msec(250));
  link.set_down(true);
  engine.run_until(msec(450));
  link.set_down(false);
  link.cancel(victim);
  engine.run_until(msec(600));
  if (link.cc_mode()) link.set_loss_rate(0.0);
  run.mid_bytes = link_bytes(link);
  run.mid_digest = link.digest();
  link.transfer(300'000, note);
  engine.run();
  run.end_bytes = link_bytes(link);
  run.end_digest = link.digest();
  run.retired = link.cc_mode() ? link.retired_delivered() : 0;
  run.delivered = link.bytes_delivered();
  return run;
}

TEST_P(PerController, RunTwiceIsByteIdenticalUnderChurn) {
  const ChurnRun first = drive_churn(GetParam());
  const ChurnRun second = drive_churn(GetParam());
  EXPECT_EQ(first.completions, second.completions);
  EXPECT_EQ(first.mid_bytes, second.mid_bytes);
  EXPECT_EQ(first.mid_digest, second.mid_digest);
  EXPECT_EQ(first.end_bytes, second.end_bytes);
  EXPECT_EQ(first.end_digest, second.end_digest);
  EXPECT_NE(first.end_digest, 0u);
  // Bytes that entered a flow are accounted for end to end: everything
  // still alive was retired by completion/cancel before the run ended.
  if (GetParam() != "fifo") {
    EXPECT_EQ(first.retired, first.delivered);
  }
}

TEST_P(PerController, QueueStaysWithinDroptailBound) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 2.0;  // slow bottleneck: real queue pressure
  Link link(engine, config, NetSpec{GetParam(), {}});
  if (!link.cc_mode()) return;  // fifo has no packet queue
  for (int i = 0; i < 4; ++i) link.transfer(500'000, nullptr);
  for (int step = 0; step < 40; ++step) {
    engine.run_until(engine.now() + msec(50));
    EXPECT_LE(link.backlog_bytes(), link.queue_capacity_bytes());
    // Conservation at every sample point, not just at the end.
    std::uint64_t live = 0;
    for (const auto& fs : link.flow_stats()) live += fs.delivered_bytes;
    EXPECT_EQ(link.retired_delivered() + live, link.bytes_delivered());
  }
  engine.run();
  EXPECT_EQ(link.bytes_delivered(), 2'000'000u);
}

TEST_P(PerController, CheckpointRestoreIdentityThroughHarness) {
  // check_scenario's meta-determinism pass re-runs the world and
  // restores from a checkpoint at a mid-run slice; both must land on
  // the primary run's digest trail — now with the CC flow engine and a
  // competing cross-traffic workload in the loop.
  scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 360, 30, 4, mem::PressureLevel::Moderate, 11);
  scen.net.cc = GetParam();
  if (GetParam() != "fifo") {
    scenario::CrossTrafficWorkloadSpec cross;
    cross.bulk_flows = 1;
    cross.onoff_flows = 1;
    cross.seed = 13;
    scen.workloads.emplace_back(cross);
  }
  const check::RunReport report = check::check_scenario(scen);
  ASSERT_TRUE(report.ok) << GetParam() << ": " << report.violation->oracle << ": "
                         << report.violation->detail;
  EXPECT_GT(report.slices, 0);
  EXPECT_NE(report.final_digest, 0u);
}

INSTANTIATE_TEST_SUITE_P(Controllers, PerController, ::testing::ValuesIn(net::cc_names()));

TEST(Differential, ControllersDivergeInsideTheScenarioToo) {
  // The same scenario seed under different controllers must reach
  // different world digests — the axis is real, not cosmetic.
  std::set<std::uint64_t> digests;
  for (const std::string& cc : net::cc_names()) {
    scenario::ScenarioSpec scen =
        scenario::single_video("fig16", 360, 30, 4, mem::PressureLevel::Moderate, 11);
    scen.net.cc = cc;
    check::CheckOptions opts;
    opts.meta_determinism = false;
    const check::RunReport report = check::check_scenario(scen, opts);
    ASSERT_TRUE(report.ok) << cc;
    digests.insert(report.final_digest);
  }
  EXPECT_EQ(digests.size(), net::cc_names().size());
}

// ---------- Loss signal ------------------------------------------------------

TEST(LossSignal, RandomLossDropsPacketsAndStillCompletes) {
  sim::Engine engine;
  Link link(engine, LinkConfig{}, NetSpec{"cubic", {}});
  bool ok = false;
  link.transfer(2'000'000, [&](bool completed) { ok = completed; });
  link.set_loss_rate(0.2);
  engine.run();
  EXPECT_TRUE(ok);  // retransmits recover every dropped packet
  EXPECT_EQ(link.bytes_delivered(), 2'000'000u);
  EXPECT_GT(link.packets_dropped(), 0u);
}

TEST(LossSignal, LossFreeRunIsUnaffectedByLossRng) {
  // With loss_rate == 0 the loss RNG is never drawn, so a run that
  // toggles nothing is bit-identical to one that never could have.
  const ChurnRun a = drive_churn("bbr");
  const ChurnRun b = drive_churn("bbr");
  EXPECT_EQ(a.end_bytes, b.end_bytes);
}

// ---------- Scenario encoding: SCEN v4 ---------------------------------------

TEST(ScenarioEncoding, DefaultNetStillWritesVersionTwo) {
  const scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 360, 30, 4, mem::PressureLevel::Normal, 7);
  snapshot::ByteWriter w;
  scenario::save_scenario(w, scen);
  const std::string bytes = std::move(w).take();
  snapshot::ByteReader r(bytes);
  EXPECT_EQ(r.u32(), 2u);  // historical baseline encoding, untouched
}

TEST(ScenarioEncoding, NetAndCrossTrafficRoundTripAsVersionFour) {
  scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 480, 60, 5, mem::PressureLevel::Low, 21);
  scen.net.cc = "c4";
  scen.net.params.emplace_back("c4_delay_target_us", 15000.0);
  scenario::CrossTrafficWorkloadSpec cross;
  cross.label = "peer";
  cross.bulk_flows = 2;
  cross.onoff_flows = 1;
  cross.on_s = 3;
  cross.off_s = 1;
  cross.chunk_bytes = 512 * 1024;
  cross.seed = 99;
  scen.workloads.emplace_back(cross);

  snapshot::ByteWriter w;
  scenario::save_scenario(w, scen);
  const std::string bytes = std::move(w).take();
  {
    snapshot::ByteReader version_probe(bytes);
    EXPECT_EQ(version_probe.u32(), 4u);
  }
  snapshot::ByteReader r(bytes);
  const scenario::ScenarioSpec loaded = scenario::load_scenario(r);
  EXPECT_EQ(loaded.net.cc, "c4");
  ASSERT_EQ(loaded.net.params.size(), 1u);
  EXPECT_EQ(loaded.net.params[0].first, "c4_delay_target_us");
  EXPECT_EQ(loaded.net.params[0].second, 15000.0);
  bool found = false;
  for (const auto& workload : loaded.workloads) {
    if (const auto* c = std::get_if<scenario::CrossTrafficWorkloadSpec>(&workload)) {
      found = true;
      EXPECT_EQ(c->label, "peer");
      EXPECT_EQ(c->bulk_flows, 2);
      EXPECT_EQ(c->onoff_flows, 1);
      EXPECT_EQ(c->on_s, 3);
      EXPECT_EQ(c->off_s, 1);
      EXPECT_EQ(c->chunk_bytes, 512u * 1024u);
      EXPECT_EQ(c->seed, 99u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioEncoding, UnknownControllerIsRejectedAtLoad) {
  scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 360, 30, 4, mem::PressureLevel::Normal, 7);
  scen.net.cc = "cubic";
  snapshot::ByteWriter w;
  scenario::save_scenario(w, scen);
  std::string bytes = std::move(w).take();
  // Corrupt the controller name in place ("cubic" -> "cubiq").
  const std::size_t pos = bytes.find("cubic");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 4] = 'q';
  snapshot::ByteReader r(bytes);
  EXPECT_THROW(scenario::load_scenario(r), std::exception);
}

// ---------- Fuzz lane --------------------------------------------------------

TEST(Fuzz, CcAxisRunsCleanUnderFullSuite) {
  check::FuzzOptions opts;
  opts.seed = 77;
  opts.runs = 6;
  opts.generator.max_videos = 2;
  opts.generator.max_duration_s = 4;
  opts.generator.ccs = {"fifo", "cubic", "bbr", "c4"};
  const check::FuzzSummary summary = check::run_fuzz(opts);
  EXPECT_EQ(summary.failed, 0)
      << (summary.failures.empty()
              ? ""
              : summary.failures.front().violation.oracle + ": " +
                    summary.failures.front().violation.detail);
  EXPECT_NE(summary.digest, 0u);
}

TEST(Fuzz, CcAxisDigestDiffersFromFifoOnlyCampaign) {
  check::FuzzOptions base;
  base.seed = 77;
  base.runs = 4;
  base.generator.max_videos = 1;
  base.generator.max_duration_s = 3;
  base.check.meta_determinism = false;
  check::FuzzOptions with_ccs = base;
  with_ccs.generator.ccs = {"cubic", "bbr", "c4"};
  const check::FuzzSummary plain = check::run_fuzz(base);
  const check::FuzzSummary ccs = check::run_fuzz(with_ccs);
  EXPECT_EQ(plain.failed, 0);
  EXPECT_EQ(ccs.failed, 0);
  EXPECT_NE(plain.digest, ccs.digest);
}

}  // namespace
}  // namespace mvqoe
