#!/bin/sh
# CC-lane sweep determinism smoke (ISSUE 10 acceptance scenario): for
# every congestion controller, the same sweep grid executed serially,
# under --procs 4, and SIGKILLed partway (--kill-after-checkpoints)
# then resumed must print the same campaign digest and write
# byte-identical BENCH_*.json output. The network axis must compose
# with the campaign machinery without costing a single output byte.
set -u

CAMPAIGN="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mvqoe_cc_smoke.XXXXXX")" || exit 1
trap 'rm -rf "$WORK"' EXIT

SPEC="--duration 6 --runs 2 --seed 5 --states low --fps 30 --heights 360"

digest_of() {
  sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$1" | tail -1
}

for cc in fifo cubic bbr c4; do
  echo "== [$cc] uninterrupted serial sweep =="
  mkdir -p "$WORK/$cc/serial"
  # shellcheck disable=SC2086
  MVQOE_JSON_DIR="$WORK/$cc/serial" "$CAMPAIGN" sweep $SPEC --cc "$cc" --out cc \
      > "$WORK/$cc/serial.log" 2>&1
  status=$?
  if [ $status -ne 0 ]; then
    echo "[$cc] serial sweep failed with exit $status"
    cat "$WORK/$cc/serial.log"
    exit 1
  fi
  serial_digest=$(digest_of "$WORK/$cc/serial.log")
  echo "[$cc] serial digest: $serial_digest"
  [ -n "$serial_digest" ] || { cat "$WORK/$cc/serial.log"; exit 1; }
  [ -f "$WORK/$cc/serial/BENCH_cc.json" ] || {
    echo "[$cc] missing BENCH_cc.json"
    exit 1
  }

  echo "== [$cc] --procs 4 sweep =="
  mkdir -p "$WORK/$cc/procs"
  # shellcheck disable=SC2086
  MVQOE_JSON_DIR="$WORK/$cc/procs" "$CAMPAIGN" sweep $SPEC --cc "$cc" --procs 4 --out cc \
      > "$WORK/$cc/procs.log" 2>&1
  status=$?
  if [ $status -ne 0 ]; then
    echo "[$cc] procs sweep failed with exit $status"
    cat "$WORK/$cc/procs.log"
    exit 1
  fi
  procs_digest=$(digest_of "$WORK/$cc/procs.log")
  echo "[$cc] procs digest:  $procs_digest"
  if [ "$procs_digest" != "$serial_digest" ]; then
    echo "[$cc] DIGEST MISMATCH: serial=$serial_digest procs=$procs_digest"
    exit 1
  fi
  # The sweep json records procs_used in its "jobs" metadata field, so
  # normalize that one field; every result-bearing byte must match.
  sed 's/"jobs": *[0-9]*/"jobs": 0/' "$WORK/$cc/serial/BENCH_cc.json" > "$WORK/$cc/serial.norm"
  sed 's/"jobs": *[0-9]*/"jobs": 0/' "$WORK/$cc/procs/BENCH_cc.json" > "$WORK/$cc/procs.norm"
  cmp -s "$WORK/$cc/serial.norm" "$WORK/$cc/procs.norm" || {
    echo "[$cc] procs BENCH json differs from the serial run"
    exit 1
  }

  echo "== [$cc] sweep SIGKILLed after 1 checkpoint =="
  STATE="$WORK/$cc/sweep.mvqs"
  # shellcheck disable=SC2086
  "$CAMPAIGN" sweep $SPEC --cc "$cc" --state "$STATE" --kill-after-checkpoints 1 \
      > "$WORK/$cc/killed.log" 2>&1
  status=$?
  # 137 = 128 + SIGKILL: the coordinator must actually die, not exit.
  if [ $status -ne 137 ]; then
    echo "[$cc] expected the sweep to die by SIGKILL (exit 137), got $status"
    cat "$WORK/$cc/killed.log"
    exit 1
  fi
  [ -f "$STATE" ] || { echo "[$cc] no checkpoint at $STATE"; exit 1; }

  echo "== [$cc] resume from the checkpoint (grid and cc come from the blob) =="
  mkdir -p "$WORK/$cc/resumed"
  MVQOE_JSON_DIR="$WORK/$cc/resumed" "$CAMPAIGN" sweep --resume "$STATE" --out cc \
      > "$WORK/$cc/resume.log" 2>&1
  status=$?
  if [ $status -ne 0 ]; then
    echo "[$cc] resume failed with exit $status"
    cat "$WORK/$cc/resume.log"
    exit 1
  fi
  resumed_digest=$(digest_of "$WORK/$cc/resume.log")
  echo "[$cc] resumed digest: $resumed_digest"
  if [ "$resumed_digest" != "$serial_digest" ]; then
    echo "[$cc] DIGEST MISMATCH: serial=$serial_digest resumed=$resumed_digest"
    cat "$WORK/$cc/resume.log"
    exit 1
  fi
  cmp -s "$WORK/$cc/serial/BENCH_cc.json" "$WORK/$cc/resumed/BENCH_cc.json" || {
    echo "[$cc] resumed BENCH json differs from the serial run"
    exit 1
  }
done

echo "OK: every CC lane is digest- and byte-identical across serial, --procs and kill-and-resume"
exit 0
