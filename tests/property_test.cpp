// Property-based / parameterized sweeps over the simulator's invariants,
// driven through the src/check scenario generator: the sampled worlds
// (device topologies, memory configs, op-storm seeds) come from
// generate_scenario() streams, so the property surface tracks the same
// distribution the fuzzer explores. The default tier samples 200+
// scenarios (GeneratedScenarioProperties alone covers 200 seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "check/generator.hpp"
#include "mem/memory_manager.hpp"
#include "qoe/mos.hpp"
#include "sched/scheduler.hpp"
#include "scenario/spec.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "trace/analysis.hpp"
#include "video/abr_policy.hpp"
#include "video/ladder.hpp"

namespace mvqoe {
namespace {

/// Campaign seed for every generator stream in this file.
constexpr std::uint64_t kPropertyBase = 0x50524F50ULL;  // "PROP"

scenario::ScenarioSpec sampled_scenario(int index) {
  return check::generate_scenario(stats::derive_seed(kPropertyBase, static_cast<std::uint64_t>(index)));
}

std::string serialized(const scenario::ScenarioSpec& scen) {
  snapshot::ByteWriter w;
  scenario::save_scenario(w, scen);
  return std::string(w.view());
}

// ---------- Generator: structural properties over 200 sampled scenarios -----

class GeneratedScenarioProperties : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedScenarioProperties, DeterministicAndSerializable) {
  const scenario::ScenarioSpec a = sampled_scenario(GetParam());
  const scenario::ScenarioSpec b = sampled_scenario(GetParam());
  // Same seed -> byte-identical spec; the fuzzer's reproducibility story
  // rests on this.
  const std::string bytes = serialized(a);
  ASSERT_EQ(bytes, serialized(b));
  // Round-trips through the SCEN section losslessly.
  snapshot::ByteReader r(bytes);
  const scenario::ScenarioSpec loaded = scenario::load_scenario(r);
  EXPECT_EQ(bytes, serialized(loaded));
}

TEST_P(GeneratedScenarioProperties, ResolvesDeviceAndPlatform) {
  const scenario::ScenarioSpec scen = sampled_scenario(GetParam());
  const core::DeviceProfile device = device_for(scen);
  EXPECT_GT(device.ram_mb, 0);
  EXPECT_FALSE(device.scheduler.cores.empty());
  for (std::size_t i = 0; i < scenario::video_count(scen); ++i) {
    (void)scenario::platform_for(scen, scenario::video_spec(scen, i));
  }
}

TEST_P(GeneratedScenarioProperties, FieldsWithinGeneratorBounds) {
  const check::GeneratorConfig config;
  const scenario::ScenarioSpec scen = sampled_scenario(GetParam());
  const std::size_t videos = scenario::video_count(scen);
  ASSERT_GE(videos, 1u);
  ASSERT_LE(videos, static_cast<std::size_t>(config.max_videos));
  const auto ladder = video::BitrateLadder::youtube();
  for (std::size_t i = 0; i < videos; ++i) {
    const scenario::VideoWorkloadSpec& video = scenario::video_spec(scen, i);
    EXPECT_GE(video.duration_s, config.min_duration_s);
    EXPECT_LE(video.duration_s, config.max_duration_s);
    // Every sampled cell is a real ladder rung.
    EXPECT_TRUE(ladder.find(video.height, video.fps).has_value()) << video.label;
    // Runtime-only hooks must never be sampled (specs stay serializable).
    EXPECT_EQ(video.abr, nullptr);
    EXPECT_FALSE(video.session_override.has_value());
    EXPECT_FALSE(video.recovery.has_value());
  }
  EXPECT_FALSE(scen.device_override.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedScenarioProperties, ::testing::Range(0, 200));

// ---------- Scheduler: work conservation across topologies ------------------

/// All submitted work completes, never faster than the core capacity
/// allows and never slower than strictly serial on the slowest core.
void expect_work_conserving(sched::SchedulerConfig config, int threads) {
  sim::Engine engine;
  trace::Tracer tracer;
  config.context_switch_cost_refus = 0.0;
  config.migration_cost_refus = 0.0;
  double capacity = 0.0;
  double min_freq = config.cores.front().freq_ghz;
  for (const sched::CoreConfig& core : config.cores) {
    capacity += core.freq_ghz;
    min_freq = std::min(min_freq, core.freq_ghz);
  }
  sched::Scheduler scheduler(engine, tracer, config);

  const double work_each = 20'000.0;  // 20ms reference work per thread
  int completed = 0;
  for (int i = 0; i < threads; ++i) {
    sched::ThreadSpec spec;
    spec.name = "worker" + std::to_string(i);
    spec.pid = 100;
    const auto tid = scheduler.create_thread(spec);
    scheduler.run_work(tid, work_each, [&completed] { ++completed; });
  }
  engine.run();
  EXPECT_EQ(completed, threads);
  const double total_work = work_each * threads;
  const double ideal_us = total_work / capacity;       // perfect speedup
  const double serial_us = total_work / min_freq;      // one slow core
  const double wall = static_cast<double>(engine.now());
  EXPECT_GE(wall + 1.0, std::max(ideal_us, work_each / min_freq));
  EXPECT_LE(wall, serial_us + 1000.0);
}

class SchedWorkConservation : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SchedWorkConservation, AllSubmittedWorkCompletesAtCapacityRate) {
  const auto [cores, freq, threads] = GetParam();
  sched::SchedulerConfig config;
  config.cores = std::vector<sched::CoreConfig>(static_cast<std::size_t>(cores),
                                                sched::CoreConfig{freq});
  expect_work_conserving(config, threads);
}

INSTANTIATE_TEST_SUITE_P(Topologies, SchedWorkConservation,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0.5, 1.0, 2.33),
                                            ::testing::Values(1, 3, 8, 16)));

/// The same property on the exact (possibly heterogeneous) topologies of
/// the devices the generator samples — Nokia 1, Nexus 5, Nexus 6P.
class SchedWorkConservationSampled : public ::testing::TestWithParam<int> {};

TEST_P(SchedWorkConservationSampled, SampledDeviceTopologyIsWorkConserving) {
  const scenario::ScenarioSpec scen = sampled_scenario(1000 + GetParam());
  const core::DeviceProfile device = device_for(scen);
  const int threads = 2 + 3 * static_cast<int>(scenario::video_count(scen));
  expect_work_conserving(device.scheduler, threads);
}

INSTANTIATE_TEST_SUITE_P(Worlds, SchedWorkConservationSampled, ::testing::Range(0, 8));

// ---------- Scheduler: fair share proportional to thread count --------------

class SchedFairness : public ::testing::TestWithParam<int> {};

TEST_P(SchedFairness, EqualWeightThreadsGetEqualCpu) {
  const int threads = GetParam();
  sim::Engine engine;
  trace::Tracer tracer;
  sched::SchedulerConfig config;
  config.cores = {sched::CoreConfig{1.0}};
  config.context_switch_cost_refus = 0.0;
  sched::Scheduler scheduler(engine, tracer, config);

  std::vector<sched::ThreadId> tids;
  std::vector<std::function<void()>> loops(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    sched::ThreadSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.pid = 1;
    tids.push_back(scheduler.create_thread(spec));
  }
  for (int i = 0; i < threads; ++i) {
    const auto tid = tids[static_cast<std::size_t>(i)];
    auto& loop = loops[static_cast<std::size_t>(i)];
    loop = [&scheduler, tid, &loop] { scheduler.run_work(tid, 2000.0, loop); };
    loop();
  }
  engine.run_until(sim::sec(3));
  tracer.finalize(engine.now());

  const double expected = 3.0 / threads;
  for (const auto tid : tids) {
    const auto times = trace::state_times(tracer, {tid});
    EXPECT_NEAR(times.running, expected, expected * 0.25)
        << "thread " << tid << " of " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SchedFairness, ::testing::Values(2, 3, 5, 8));

// ---------- Memory manager: invariants under random operation storms --------

/// Storms run on the memory config of the device a generated scenario
/// resolves to, seeded from the scenario's own stream.
class MemOpStorm : public ::testing::TestWithParam<int> {};

TEST_P(MemOpStorm, PoolInvariantsHoldUnderRandomOps) {
  const scenario::ScenarioSpec scen = sampled_scenario(2000 + GetParam());
  const core::DeviceProfile device = device_for(scen);
  sim::Engine engine;
  const mem::MemoryConfig config = device.memory;
  mem::MemoryManager manager(engine, config);
  stats::Rng rng(stats::derive_seed(scen.seed, 0x53544F52ULL));  // "STOR"

  std::vector<mem::ProcessId> live;
  mem::ProcessId next_pid = 100;
  for (int op = 0; op < 600; ++op) {
    engine.run_until(engine.now() + sim::msec(50));
    const double dice = rng.uniform();
    if (dice < 0.3 || live.empty()) {
      const mem::ProcessId pid = next_pid++;
      manager.register_process(pid, "p" + std::to_string(pid),
                               rng.bernoulli(0.5) ? mem::OomAdj::kCached
                                                  : mem::OomAdj::kService);
      live.push_back(pid);
      manager.alloc_anon(pid, rng.uniform_int(100, 8000), 0, nullptr);
    } else {
      const auto index =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      const mem::ProcessId pid = live[index];
      if (!manager.registry().alive(pid)) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
        continue;
      }
      const double action = rng.uniform();
      if (action < 0.35) {
        manager.alloc_anon(pid, rng.uniform_int(100, 6000), 0, nullptr);
      } else if (action < 0.55) {
        manager.free_anon(pid, rng.uniform_int(100, 4000));
      } else if (action < 0.70) {
        manager.map_file(pid, rng.uniform_int(50, 1500), 0, nullptr);
      } else if (action < 0.85) {
        const mem::Pages anon_touch = rng.uniform_int(100, 4000);
        const mem::Pages file_touch = rng.uniform_int(0, 800);
        manager.touch_working_set(pid, 0, anon_touch, file_touch, nullptr);
      } else {
        manager.exit_process(pid);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
      }
    }
    // Invariants after every operation (the same ones the fuzz oracles
    // enforce at slice granularity):
    ASSERT_GE(manager.free_pages(), 0);
    ASSERT_GE(manager.anon_pages(), 0);
    ASSERT_GE(manager.file_pages(), 0);
    ASSERT_GE(manager.zram_stored(), 0);
    ASSERT_LE(manager.zram_stored(), config.zram_capacity);
    ASSERT_LE(manager.available_pages(), config.total - config.kernel_reserved);
    ASSERT_TRUE(manager.check_conservation().ok) << manager.check_conservation().detail;
    const double pressure = manager.pressure_P();
    ASSERT_GE(pressure, 0.0);
    ASSERT_LE(pressure, 100.0);
  }
  engine.run();

  // Tear everything down: pools must return to zero.
  for (const auto pid : live) manager.exit_process(pid);
  engine.run();
  EXPECT_EQ(manager.anon_pages(), 0);
  EXPECT_EQ(manager.zram_stored(), 0);
}

INSTANTIATE_TEST_SUITE_P(Worlds, MemOpStorm, ::testing::Range(0, 8));

// ---------- Ladder: structural properties over the whole grid ----------------

class LadderProperties : public ::testing::TestWithParam<int> {};

TEST_P(LadderProperties, BitrateMonotoneInResolutionPerFps) {
  const int fps = GetParam();
  const auto ladder = video::BitrateLadder::youtube();
  int previous = 0;
  for (const int height : ladder.heights()) {
    const auto rung = ladder.find(height, fps);
    ASSERT_TRUE(rung.has_value());
    EXPECT_GT(rung->bitrate_kbps, previous);
    previous = rung->bitrate_kbps;
  }
}

TEST_P(LadderProperties, StepDownUpAreInverseInTheInterior) {
  const int fps = GetParam();
  const auto ladder = video::BitrateLadder::youtube();
  for (const int height : ladder.heights()) {
    const auto rung = *ladder.find(height, fps);
    const auto down = ladder.step_down(rung);
    if (down.has_value()) {
      const auto back = ladder.step_up(*down);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, rung);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FrameRates, LadderProperties, ::testing::Values(24, 30, 48, 60));

// ---------- ABR: safety properties over a context grid -----------------------

class AbrSafety : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(AbrSafety, MemoryAwareNeverExceedsLevelCaps) {
  const auto [level, drops, fps] = GetParam();
  const auto ladder = video::BitrateLadder::youtube();
  video::MemoryAwareConfig config;
  video::MemoryAwareAbr policy(std::make_unique<video::RateBasedAbr>(fps), config);

  video::AbrContext context;
  context.ladder = &ladder;
  context.current = *ladder.find(1080, fps);
  context.buffer_seconds = 40.0;
  context.throughput_mbps = 100.0;
  context.pressure = static_cast<mem::PressureLevel>(level);
  context.recent_drop_rate = drops;

  const auto rung = policy.choose(context);
  EXPECT_LE(rung.fps, config.max_fps[level]);
  EXPECT_LE(rung.resolution.height, config.max_height[level]);
  // The chosen rung must exist on the ladder.
  EXPECT_TRUE(ladder.find(rung.resolution.height, rung.fps).has_value());
}

INSTANTIATE_TEST_SUITE_P(Grid, AbrSafety,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0.0, 0.05, 0.2, 0.6),
                                            ::testing::Values(30, 60)));

// ---------- MOS model: monotonicity over the drop-rate grid ------------------

class MosMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(MosMonotonicity, WorseClipNeverRatesHigherOnAverage) {
  const double reference = GetParam();
  const qoe::MosModel model;
  double previous_mean = 6.0;
  for (double degraded = reference; degraded <= 0.9; degraded += 0.1) {
    const auto survey = qoe::run_dmos_survey(model, reference, degraded, 400, 7);
    EXPECT_LE(survey.mean(), previous_mean + 0.05)
        << "reference " << reference << " degraded " << degraded;
    previous_mean = survey.mean();
  }
}

INSTANTIATE_TEST_SUITE_P(References, MosMonotonicity, ::testing::Values(0.0, 0.03, 0.1));

// ---------- RNG: distribution sanity over seeds -------------------------------

class RngDistribution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDistribution, UniformMomentsWithinTolerance) {
  stats::Rng rng(GetParam());
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDistribution,
                         ::testing::Values(1u, 42u, 1234567u, 0xdeadbeefu));

}  // namespace
}  // namespace mvqoe
