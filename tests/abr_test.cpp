#include <gtest/gtest.h>

#include "video/abr_policy.hpp"

namespace mvqoe::video {
namespace {

using mem::PressureLevel;
using video::BitrateLadder;

struct ContextBuilder {
  AbrContext context;
  BitrateLadder ladder = BitrateLadder::youtube();

  ContextBuilder() {
    context.ladder = &ladder;
    context.current = *ladder.find(480, 30);
    context.buffer_seconds = 30.0;
    context.throughput_mbps = 50.0;
  }
  ContextBuilder& buffer(double seconds) {
    context.buffer_seconds = seconds;
    return *this;
  }
  ContextBuilder& throughput(double mbps) {
    context.throughput_mbps = mbps;
    return *this;
  }
  ContextBuilder& pressure(PressureLevel level) {
    context.pressure = level;
    return *this;
  }
  ContextBuilder& drops(double rate) {
    context.recent_drop_rate = rate;
    return *this;
  }
  ContextBuilder& current(int height, int fps) {
    context.current = *ladder.find(height, fps);
    return *this;
  }
  ContextBuilder& segment(int index) {
    context.segment_index = index;
    return *this;
  }
};

TEST(RateBased, PicksHighestRungUnderThroughput) {
  RateBasedAbr abr(30, 0.8);
  ContextBuilder builder;
  // 10 Mbps * 0.8 = 8 Mbps budget -> exactly the 1080p30 rung.
  const auto rung = abr.choose(builder.throughput(10.0).context);
  EXPECT_EQ(rung.resolution.height, 1080);
  EXPECT_EQ(rung.fps, 30);
}

TEST(RateBased, LowThroughputPicksBottomRung) {
  RateBasedAbr abr(30);
  const auto rung = abr.choose(ContextBuilder().throughput(0.3).context);
  EXPECT_EQ(rung.resolution.height, 240);
}

TEST(RateBased, NoEstimateStartsConservative) {
  RateBasedAbr abr(30);
  const auto rung = abr.choose(ContextBuilder().throughput(0.0).context);
  EXPECT_EQ(rung.resolution.height, 240);
}

TEST(RateBased, KeepsConfiguredFps) {
  RateBasedAbr abr(60);
  const auto rung = abr.choose(ContextBuilder().throughput(100.0).context);
  EXPECT_EQ(rung.fps, 60);
  EXPECT_EQ(rung.resolution.height, 1440);
}

TEST(BufferBased, ReservoirForcesLowestRung) {
  BufferBasedAbr abr(30, 10.0, 40.0);
  const auto rung = abr.choose(ContextBuilder().buffer(5.0).context);
  EXPECT_EQ(rung.resolution.height, 240);
}

TEST(BufferBased, CushionAllowsTopRung) {
  BufferBasedAbr abr(30, 10.0, 40.0);
  const auto rung = abr.choose(ContextBuilder().buffer(55.0).context);
  EXPECT_EQ(rung.resolution.height, 1440);
}

TEST(BufferBased, MidBufferPicksMidLadder) {
  BufferBasedAbr abr(30, 10.0, 40.0);
  const auto rung = abr.choose(ContextBuilder().buffer(25.0).context);
  EXPECT_GT(rung.resolution.height, 240);
  EXPECT_LT(rung.resolution.height, 1440);
}

TEST(BufferBased, MonotoneInBufferLevel) {
  BufferBasedAbr abr(30);
  int previous = 0;
  for (double buffer = 0.0; buffer <= 60.0; buffer += 5.0) {
    const auto rung = abr.choose(ContextBuilder().buffer(buffer).context);
    EXPECT_GE(rung.bitrate_kbps, previous);
    previous = rung.bitrate_kbps;
  }
}

TEST(Bola, EmptyBufferPicksLowRung) {
  BolaAbr abr(30);
  const auto rung = abr.choose(ContextBuilder().buffer(0.0).context);
  EXPECT_EQ(rung.resolution.height, 240);
}

TEST(Bola, FullBufferPicksTopRung) {
  BolaAbr abr(30, 40.0);
  const auto rung = abr.choose(ContextBuilder().buffer(40.0).context);
  EXPECT_EQ(rung.resolution.height, 1440);
}

TEST(Bola, MonotoneInBufferLevel) {
  BolaAbr abr(30);
  int previous = 0;
  for (double buffer = 0.0; buffer <= 60.0; buffer += 4.0) {
    const auto rung = abr.choose(ContextBuilder().buffer(buffer).context);
    EXPECT_GE(rung.bitrate_kbps, previous);
    previous = rung.bitrate_kbps;
  }
}

TEST(NextFpsDown, StepsThroughLadderRates) {
  const auto ladder = BitrateLadder::youtube();
  EXPECT_EQ(next_fps_down(ladder, 60), 48);
  EXPECT_EQ(next_fps_down(ladder, 48), 30);
  EXPECT_EQ(next_fps_down(ladder, 30), 24);
  EXPECT_EQ(next_fps_down(ladder, 24), 24);  // floor
}

TEST(MemoryAware, NoPressurePassesInnerChoiceThrough) {
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60));
  const auto rung = abr.choose(ContextBuilder().throughput(100.0).context);
  EXPECT_EQ(rung.resolution.height, 1440);
  EXPECT_EQ(rung.fps, 60);
}

TEST(MemoryAware, ModeratePressureCapsFrameRate) {
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60));
  const auto rung =
      abr.choose(ContextBuilder().throughput(100.0).pressure(PressureLevel::Moderate).context);
  EXPECT_LE(rung.fps, 48);
  EXPECT_LE(rung.resolution.height, 1080);
}

TEST(MemoryAware, CriticalPressureCapsHard) {
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60));
  const auto rung =
      abr.choose(ContextBuilder().throughput(100.0).pressure(PressureLevel::Critical).context);
  EXPECT_LE(rung.fps, 24);
  EXPECT_LE(rung.resolution.height, 480);
}

TEST(MemoryAware, DropsUnderCapTradeFrameRateFirst) {
  // Under Moderate pressure with drops still high, the fps cap steps down
  // another notch while resolution can stay (the §6 finding).
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60));
  const auto rung = abr.choose(ContextBuilder()
                                   .throughput(100.0)
                                   .pressure(PressureLevel::Moderate)
                                   .drops(0.25)
                                   .context);
  EXPECT_LE(rung.fps, 30);
}

TEST(MemoryAware, HysteresisHoldsCapAfterPressureClears) {
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60));
  ContextBuilder builder;
  builder.throughput(100.0);
  // See Critical once...
  abr.choose(builder.pressure(PressureLevel::Critical).segment(0).context);
  // ...then pressure reads Normal on the next segment: cap must persist.
  const auto rung = abr.choose(builder.pressure(PressureLevel::Normal).segment(1).context);
  EXPECT_LE(rung.fps, 24);
}

TEST(MemoryAware, CapDecaysAfterSustainedCalm) {
  MemoryAwareConfig config;
  config.hold_segments = 2;
  MemoryAwareAbr abr(std::make_unique<RateBasedAbr>(60), config);
  ContextBuilder builder;
  builder.throughput(100.0);
  abr.choose(builder.pressure(PressureLevel::Critical).segment(0).context);
  builder.pressure(PressureLevel::Normal);
  video::Rung rung = *builder.ladder.find(240, 24);
  for (int segment = 1; segment < 30; ++segment) {
    rung = abr.choose(builder.segment(segment).context);
  }
  EXPECT_EQ(rung.fps, 60);
  EXPECT_EQ(rung.resolution.height, 1440);
}

TEST(MemoryAware, NullInnerHoldsCurrentRung) {
  MemoryAwareAbr abr(nullptr);
  const auto rung = abr.choose(ContextBuilder().current(720, 60).context);
  EXPECT_EQ(rung.resolution.height, 720);
  EXPECT_EQ(rung.fps, 60);
}

TEST(MemoryAware, NameReflectsInnerPolicy) {
  MemoryAwareAbr abr(std::make_unique<BolaAbr>(30));
  EXPECT_EQ(abr.name(), "memory-aware(bola)");
}

}  // namespace
}  // namespace mvqoe::video
