// Cross-module integration tests: full experiments exercised end to end,
// checking the invariants that hold across subsystem boundaries rather
// than any single module's behaviour.
#include <gtest/gtest.h>

#include "video/abr_policy.hpp"
#include "core/experiment.hpp"
#include "trace/analysis.hpp"

namespace mvqoe {
namespace {

using mem::PressureLevel;

core::VideoRunSpec quick_spec(core::DeviceProfile device, int height, int fps,
                              PressureLevel pressure, int duration = 24) {
  core::VideoRunSpec spec;
  spec.device = std::move(device);
  spec.height = height;
  spec.fps = fps;
  spec.pressure = pressure;
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = 9;
  return spec;
}

TEST(Integration, FrameAccountingIsExactWhenNotCrashed) {
  const auto result =
      core::run_video(quick_spec(core::nexus5(), 480, 30, PressureLevel::Normal));
  ASSERT_FALSE(result.outcome.crashed);
  EXPECT_EQ(result.metrics.frames_presented + result.metrics.frames_dropped, 24 * 30);
  // Per-second series sums must match the totals.
  std::int64_t presented = 0;
  for (const int n : result.metrics.presented_per_second) presented += n;
  EXPECT_EQ(presented, result.metrics.frames_presented);
}

TEST(Integration, PressureMonotonicallyDegradesQoE) {
  // The paper's core claim: Normal <= Moderate <= Critical in badness
  // (drops + crash). Compare a composite badness score.
  auto badness = [](const core::VideoRunResult& result) {
    return result.outcome.drop_rate + (result.outcome.crashed ? 1.0 : 0.0);
  };
  const auto normal =
      core::run_video(quick_spec(core::nokia1(), 720, 60, PressureLevel::Normal));
  const auto moderate =
      core::run_video(quick_spec(core::nokia1(), 720, 60, PressureLevel::Moderate));
  const auto critical =
      core::run_video(quick_spec(core::nokia1(), 720, 60, PressureLevel::Critical));
  EXPECT_LE(badness(normal), badness(moderate) + 1e-9);
  EXPECT_LE(badness(moderate), badness(critical) + 1e-9);
}

TEST(Integration, HigherRungNeverReducesDrops) {
  const auto low = core::run_video(quick_spec(core::nokia1(), 240, 30, PressureLevel::Normal));
  const auto high =
      core::run_video(quick_spec(core::nokia1(), 1080, 60, PressureLevel::Normal));
  EXPECT_LE(low.outcome.drop_rate, high.outcome.drop_rate + 1e-9);
}

TEST(Integration, CrashAlwaysLeavesKillAndCrashEvents) {
  core::VideoExperiment experiment(
      quick_spec(core::nokia1(), 720, 60, PressureLevel::Critical));
  const auto result = experiment.run();
  ASSERT_TRUE(result.outcome.crashed);
  const auto& instants = experiment.testbed().tracer.instants();
  bool saw_crash = false;
  bool saw_foreground_kill = false;
  for (const auto& event : instants) {
    if (event.kind == trace::InstantKind::ClientCrashed) saw_crash = true;
    if (event.kind == trace::InstantKind::ProcessKilled && event.value == 0) {
      saw_foreground_kill = true;
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_foreground_kill);
}

TEST(Integration, TraceIntervalsArePerThreadContiguous) {
  core::VideoExperiment experiment(
      quick_spec(core::nexus5(), 480, 60, PressureLevel::Moderate));
  experiment.run();
  auto& tracer = experiment.testbed().tracer;
  tracer.finalize(experiment.testbed().engine.now());
  // For every thread, intervals must be non-overlapping and contiguous
  // in time order (the scheduler never leaves accounting gaps).
  std::map<trace::ThreadId, sim::Time> last_end;
  for (const auto& interval : tracer.intervals()) {
    ASSERT_LE(interval.begin, interval.end);
    const auto it = last_end.find(interval.tid);
    if (it != last_end.end()) {
      EXPECT_EQ(it->second, interval.begin)
          << "gap/overlap in thread " << interval.tid << " timeline";
    }
    last_end[interval.tid] = interval.end;
  }
}

TEST(Integration, OnlyOneThreadRunsPerCoreAtATime) {
  core::VideoExperiment experiment(
      quick_spec(core::nokia1(), 480, 60, PressureLevel::Moderate, 16));
  experiment.run();
  auto& tracer = experiment.testbed().tracer;
  tracer.finalize(experiment.testbed().engine.now());
  // Total Running time across all threads can never exceed cores x wall.
  double running = 0.0;
  sim::Time end = 0;
  for (const auto& interval : tracer.intervals()) {
    if (interval.state == trace::ThreadState::Running) {
      running += sim::to_seconds(interval.end - interval.begin);
    }
    end = std::max(end, interval.end);
  }
  const double capacity =
      sim::to_seconds(end) * static_cast<double>(experiment.testbed().scheduler.core_count());
  EXPECT_LE(running, capacity + 1e-6);
}

TEST(Integration, MemoryAccountingInvariantHoldsAfterRun) {
  core::VideoExperiment experiment(
      quick_spec(core::nokia1(), 720, 60, PressureLevel::Moderate, 16));
  experiment.run();
  auto& memory = experiment.testbed().memory;
  // free is derived from the pools; it must stay within [0, total].
  EXPECT_GE(memory.free_pages(), 0);
  EXPECT_LE(memory.free_pages() + memory.anon_pages() + memory.file_pages(),
            memory.config().total);
  // Per-process sums must match the pools.
  mem::Pages anon = 0;
  mem::Pages file = 0;
  mem::Pages swapped = 0;
  for (const auto* process : memory.registry().all()) {
    anon += process->anon_resident;
    file += process->file_resident;
    swapped += process->anon_swapped;
    EXPECT_GE(process->anon_resident, 0);
    EXPECT_GE(process->anon_swapped, 0);
    EXPECT_GE(process->file_resident, 0);
  }
  EXPECT_EQ(anon, memory.anon_pages());
  EXPECT_EQ(swapped, memory.zram_stored());
  EXPECT_LE(file, memory.file_pages());  // dirty pages are pooled globally
}

TEST(Integration, MemoryAwareAbrOutperformsFixedUnderPressure) {
  video::MemoryAwareAbr aware(std::make_unique<video::RateBasedAbr>(60));
  auto spec = quick_spec(core::nokia1(), 720, 60, PressureLevel::Moderate, 32);
  const auto fixed = core::run_video(spec);
  spec.abr = &aware;
  const auto adaptive = core::run_video(spec);
  const double fixed_badness = fixed.outcome.drop_rate + (fixed.outcome.crashed ? 1.0 : 0.0);
  const double adaptive_badness =
      adaptive.outcome.drop_rate + (adaptive.outcome.crashed ? 1.0 : 0.0);
  EXPECT_LT(adaptive_badness, fixed_badness + 1e-9);
  // And it must have actually adapted downward.
  ASSERT_FALSE(adaptive.metrics.rung_history.empty());
  EXPECT_LT(adaptive.metrics.rung_history.back().fps, 60);
}

TEST(Integration, SmallerFootprintPlayerDropsFewerFramesUnderPressure) {
  auto spec = quick_spec(core::nokia1(), 480, 60, PressureLevel::Moderate, 24);
  spec.platform = video::PlayerPlatform::Firefox;
  const auto firefox = core::run_video(spec);
  spec.platform = video::PlayerPlatform::ExoPlayer;
  const auto exoplayer = core::run_video(spec);
  const double firefox_badness =
      firefox.outcome.drop_rate + (firefox.outcome.crashed ? 1.0 : 0.0);
  const double exo_badness =
      exoplayer.outcome.drop_rate + (exoplayer.outcome.crashed ? 1.0 : 0.0);
  EXPECT_LE(exo_badness, firefox_badness + 1e-9);
}

TEST(Integration, RepeatedRunsAreIndependentAndSeedDriven) {
  auto spec = quick_spec(core::nexus5(), 720, 60, PressureLevel::Normal, 12);
  const auto aggregate_a = core::run_video_repeated(spec, 3);
  const auto aggregate_b = core::run_video_repeated(spec, 3);
  ASSERT_EQ(aggregate_a.runs(), aggregate_b.runs());
  // Same base seed -> identical aggregate.
  EXPECT_DOUBLE_EQ(aggregate_a.drop_rate().mean, aggregate_b.drop_rate().mean);
  spec.seed = 999;
  const auto aggregate_c = core::run_video_repeated(spec, 3);
  EXPECT_EQ(aggregate_c.runs(), 3u);
}

TEST(Integration, BiggerDeviceIsNeverWorse) {
  const auto nokia =
      core::run_video(quick_spec(core::nokia1(), 1080, 60, PressureLevel::Normal, 16));
  const auto n6p =
      core::run_video(quick_spec(core::nexus6p(), 1080, 60, PressureLevel::Normal, 16));
  EXPECT_LE(n6p.outcome.drop_rate, nokia.outcome.drop_rate + 1e-9);
}

TEST(Integration, NetworkIsNeverTheBottleneck) {
  // §4.1 invariant: even at the heaviest rung a device can decode
  // (1440p30 on the Nexus 6P — 1440p60 exceeds its software-decode
  // budget, as on the real phones the paper capped at 1080p), the link
  // keeps the buffer full and every segment arrives early.
  core::VideoExperiment experiment(
      quick_spec(core::nexus6p(), 1440, 30, PressureLevel::Normal, 24));
  const auto result = experiment.run();
  EXPECT_FALSE(result.outcome.crashed);
  EXPECT_LT(result.outcome.drop_rate, 0.05);
  // All segments downloaded well before the video ended.
  std::size_t downloads = 0;
  for (const auto& event : experiment.testbed().tracer.instants()) {
    if (event.kind == trace::InstantKind::SegmentDownloaded) ++downloads;
  }
  EXPECT_EQ(downloads, 6u);  // 24 s / 4 s segments
}

TEST(Integration, TrimSignalsReachSubscribersDuringExperiments) {
  core::VideoExperiment experiment(
      quick_spec(core::nokia1(), 480, 60, PressureLevel::Moderate, 16));
  experiment.run();
  const auto& vm = experiment.testbed().memory.vmstat();
  EXPECT_GT(vm.trim_signals[1] + vm.trim_signals[2] + vm.trim_signals[3], 0u);
}

}  // namespace
}  // namespace mvqoe
