#include <gtest/gtest.h>

#include <functional>

#include "mem/memory_manager.hpp"
#include "trace/analysis.hpp"

namespace mvqoe::mem {
namespace {

using sim::msec;
using sim::sec;

MemoryConfig small_config() {
  MemoryConfig config;
  config.total = pages_from_mb(256);
  config.kernel_reserved = pages_from_mb(64);
  config.zram_capacity = pages_from_mb(96);
  config.watermark_min = pages_from_mb(4);
  config.watermark_low = pages_from_mb(12);
  config.watermark_high = pages_from_mb(20);
  // Scale the lmkd minfree levels down with the small RAM so these tests
  // exercise reclaim (zram, writeback, direct reclaim) before lmkd fires.
  config.minfree_cached = pages_from_mb(10);
  config.minfree_service = pages_from_mb(7);
  config.minfree_perceptible = pages_from_mb(5);
  config.minfree_foreground = pages_from_mb(3);
  return config;
}

// -------- Registry ---------------------------------------------------------

TEST(ProcessRegistry, AddFindRemove) {
  ProcessRegistry registry;
  registry.add(100, "app", OomAdj::kCached);
  ASSERT_NE(registry.find(100), nullptr);
  EXPECT_TRUE(registry.alive(100));
  auto* process = registry.find(100);
  process->anon_resident = 50;
  process->file_resident = 20;
  const auto freed = registry.remove(100);
  EXPECT_EQ(freed.anon, 50);
  EXPECT_EQ(freed.file, 20);
  EXPECT_FALSE(registry.alive(100));
  EXPECT_EQ(registry.find(100), nullptr);
}

TEST(ProcessRegistry, ReRegisterDeadPid) {
  ProcessRegistry registry;
  registry.add(100, "a", OomAdj::kCached);
  registry.remove(100);
  registry.add(100, "b", OomAdj::kForeground);
  ASSERT_NE(registry.find(100), nullptr);
  EXPECT_EQ(registry.find(100)->name, "b");
}

TEST(ProcessRegistry, CachedCountCountsOnlyCachedBand) {
  ProcessRegistry registry;
  registry.add(1, "fg", OomAdj::kForeground);
  registry.add(2, "svc", OomAdj::kService);
  registry.add(3, "c1", OomAdj::kCached);
  registry.add(4, "c2", OomAdj::kCached + 50);
  EXPECT_EQ(registry.cached_count(), 2);
  registry.remove(3);
  EXPECT_EQ(registry.cached_count(), 1);
}

TEST(ProcessRegistry, PickVictimHighestAdjColdestFirst) {
  ProcessRegistry registry;
  registry.add(1, "fg", OomAdj::kForeground);
  registry.add(2, "old_cached", OomAdj::kCached);
  registry.add(3, "new_cached", OomAdj::kCached);
  registry.touch(3);
  const auto victim = registry.pick_victim(OomAdj::kService);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // same adj, colder LRU
}

TEST(ProcessRegistry, PickVictimRespectsMinAdj) {
  ProcessRegistry registry;
  registry.add(1, "fg", OomAdj::kForeground);
  registry.add(2, "svc", OomAdj::kService);
  EXPECT_FALSE(registry.pick_victim(OomAdj::kCached).has_value());
  const auto victim = registry.pick_victim(OomAdj::kService);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  // At foreground eligibility, the service still outranks the foreground.
  EXPECT_EQ(*registry.pick_victim(OomAdj::kForeground), 2u);
}

TEST(ProcessRegistry, UnkillableProcessNeverPicked) {
  ProcessRegistry registry;
  registry.add(1, "inducer", OomAdj::kCached);
  registry.set_killable(1, false);
  EXPECT_FALSE(registry.pick_victim(OomAdj::kForeground).has_value());
}

TEST(ProcessRegistry, ReclaimOrderSortsByAdjThenLru) {
  ProcessRegistry registry;
  registry.add(1, "fg", OomAdj::kForeground);
  registry.add(2, "cold_cached", OomAdj::kCached);
  registry.add(3, "warm_cached", OomAdj::kCached);
  registry.touch(3);
  const auto order = registry.reclaim_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->pid, 2u);
  EXPECT_EQ(order[1]->pid, 3u);
  EXPECT_EQ(order[2]->pid, 1u);
}

TEST(ProcessRegistry, PssIsAnonPlusFile) {
  ProcessMem process;
  process.anon_resident = 100;
  process.file_resident = 30;
  process.anon_swapped = 999;  // swapped pages are not resident
  EXPECT_EQ(pss_pages(process), 130);
}

// -------- Immediate-mode MemoryManager --------------------------------------

struct ImmediateFixture {
  sim::Engine engine;
  MemoryManager manager{engine, small_config()};
};

TEST(MemoryManagerImmediate, FreshSystemHasExpectedFreePages) {
  ImmediateFixture fx;
  EXPECT_EQ(fx.manager.free_pages(), pages_from_mb(256 - 64));
  EXPECT_EQ(fx.manager.available_pages(), fx.manager.free_pages());
  EXPECT_EQ(fx.manager.level(), PressureLevel::Normal);
}

TEST(MemoryManagerImmediate, AllocAndFreeRoundTrip) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  bool ok = false;
  fx.manager.alloc_anon(100, pages_from_mb(50), 0, [&](bool success) { ok = success; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(fx.manager.anon_pages(), pages_from_mb(50));
  EXPECT_EQ(fx.manager.registry().find(100)->anon_resident, pages_from_mb(50));
  fx.manager.free_anon(100, pages_from_mb(50));
  EXPECT_EQ(fx.manager.anon_pages(), 0);
}

TEST(MemoryManagerImmediate, AllocToDeadProcessFails) {
  ImmediateFixture fx;
  bool called = false;
  bool ok = true;
  fx.manager.alloc_anon(999, 10, 0, [&](bool success) {
    called = true;
    ok = success;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(MemoryManagerImmediate, UtilizationGrowsWithAllocations) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  const double before = fx.manager.utilization();
  fx.manager.alloc_anon(100, pages_from_mb(64), 0, nullptr);
  EXPECT_GT(fx.manager.utilization(), before);
}

TEST(MemoryManagerImmediate, ReclaimCompressesColdProcessesToZram) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "fg", OomAdj::kForeground);
  fx.manager.register_process(200, "cached", OomAdj::kCached);
  // Unkillable so lmkd's minfree path cannot short-circuit compression.
  fx.manager.registry().set_killable(200, false);
  fx.manager.alloc_anon(200, pages_from_mb(60), 0, nullptr);
  // Push allocations until kswapd must reclaim; the cached process's anon
  // should be compressed before the foreground's.
  fx.manager.alloc_anon(100, pages_from_mb(160), 0, nullptr);
  EXPECT_GT(fx.manager.zram_stored(), 0);
  const auto* cached = fx.manager.registry().find(200);
  const auto* fg = fx.manager.registry().find(100);
  ASSERT_NE(cached, nullptr);
  ASSERT_NE(fg, nullptr);
  EXPECT_GT(cached->anon_swapped, 0);
  EXPECT_GE(fg->anon_resident, fg->anon_swapped);  // foreground mostly resident
}

TEST(MemoryManagerImmediate, OverCommitTriggersLmkdKills) {
  ImmediateFixture fx;
  fx.manager.register_process(1, "fg", OomAdj::kForeground);
  for (ProcessId pid = 10; pid < 20; ++pid) {
    fx.manager.register_process(pid, "cached" + std::to_string(pid), OomAdj::kCached);
    fx.manager.alloc_anon(pid, pages_from_mb(10), 0, nullptr);
  }
  // Allocate far beyond RAM + zram capacity; lmkd must start killing.
  fx.manager.alloc_anon(1, pages_from_mb(400), 0, nullptr);
  fx.engine.run();
  EXPECT_GT(fx.manager.vmstat().kills_lmkd, 0u);
  EXPECT_LT(fx.manager.registry().live_count(), 11u);
}

TEST(MemoryManagerImmediate, KillFreesMemoryAndFiresCallback) {
  ImmediateFixture fx;
  bool killed = false;
  fx.manager.register_process(100, "victim", OomAdj::kCached, [&] { killed = true; });
  fx.manager.alloc_anon(100, pages_from_mb(40), 0, nullptr);
  const Pages before = fx.manager.free_pages();
  fx.manager.kill_process(100);
  fx.engine.run();  // on_kill is deferred
  EXPECT_TRUE(killed);
  EXPECT_EQ(fx.manager.free_pages(), before + pages_from_mb(40));
  EXPECT_FALSE(fx.manager.registry().alive(100));
}

TEST(MemoryManagerImmediate, TrimLevelsFollowCachedProcessCount) {
  ImmediateFixture fx;
  fx.manager.register_process(1, "fg", OomAdj::kForeground);
  // 8 cached processes with allocations.
  for (ProcessId pid = 10; pid < 18; ++pid) {
    fx.manager.register_process(pid, "cached", OomAdj::kCached);
    fx.manager.alloc_anon(pid, pages_from_mb(12), 0, nullptr);
  }
  std::vector<PressureLevel> signals;
  fx.manager.subscribe_trim([&](PressureLevel level) { signals.push_back(level); });
  // Grind memory down; as lmkd kills cached processes the trim level must
  // escalate Moderate -> Low -> Critical.
  for (int i = 0; i < 40 && fx.manager.level() != PressureLevel::Critical; ++i) {
    fx.manager.alloc_anon(1, pages_from_mb(8), 0, nullptr);
    fx.engine.run_until(fx.engine.now() + sec(1));
  }
  EXPECT_EQ(fx.manager.level(), PressureLevel::Critical);
  // Escalation order observed.
  bool saw_moderate = false;
  bool saw_critical = false;
  for (const auto level : signals) {
    if (level == PressureLevel::Moderate) saw_moderate = true;
    if (level == PressureLevel::Critical) {
      saw_critical = true;
      EXPECT_TRUE(saw_moderate);
    }
  }
  EXPECT_TRUE(saw_critical);
}

TEST(MemoryManagerImmediate, AvailableMemoryIncludesFileCache) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.map_file(100, pages_from_mb(30), 0, nullptr);
  EXPECT_EQ(fx.manager.file_pages(), pages_from_mb(30));
  EXPECT_EQ(fx.manager.available_pages(),
            fx.manager.free_pages() + pages_from_mb(30));
}

TEST(MemoryManagerImmediate, ExitProcessFreesWithoutKillCallback) {
  ImmediateFixture fx;
  bool killed = false;
  fx.manager.register_process(100, "app", OomAdj::kCached, [&] { killed = true; });
  fx.manager.alloc_anon(100, pages_from_mb(20), 0, nullptr);
  fx.manager.exit_process(100);
  fx.engine.run();
  EXPECT_FALSE(killed);
  EXPECT_FALSE(fx.manager.registry().alive(100));
  EXPECT_EQ(fx.manager.anon_pages(), 0);
}

TEST(MemoryManagerImmediate, DirtyPagesWrittenBackUnderPressure) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.registry().set_killable(100, false);
  fx.manager.dirty_file(pages_from_mb(30));
  EXPECT_EQ(fx.manager.file_pages(), pages_from_mb(30));
  // Demand more than free + zram can provide; once zram fills, reclaim
  // must write the dirty pages back (immediate mode applies it instantly).
  fx.manager.alloc_anon(100, pages_from_mb(280), 0, [](bool) {});
  EXPECT_LT(fx.manager.file_pages(), pages_from_mb(30));
  EXPECT_GT(fx.manager.vmstat().pgpgout, 0u);
}

TEST(MemoryManagerImmediate, PressurePRisesWhenNothingReclaimable) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  // Exhaust RAM and zram with one unkillable process: reclaim can make no
  // progress, so P must saturate high.
  fx.manager.registry().set_killable(100, false);
  fx.manager.alloc_anon(100, pages_from_mb(400), 0, nullptr);
  EXPECT_GT(fx.manager.pressure_P(), 90.0);
}

TEST(MemoryManagerImmediate, TouchWorkingSetSwapsPagesBackIn) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "fg", OomAdj::kForeground);
  fx.manager.register_process(200, "cached", OomAdj::kCached);
  fx.manager.registry().set_killable(200, false);
  fx.manager.alloc_anon(200, pages_from_mb(80), 0, nullptr);
  fx.manager.alloc_anon(100, pages_from_mb(130), 0, nullptr);
  const auto* cached = fx.manager.registry().find(200);
  ASSERT_NE(cached, nullptr);
  ASSERT_GT(cached->anon_swapped, 0);
  const Pages swapped_before = cached->anon_swapped;
  // Release the foreground hog so the faulted pages have room to return.
  fx.manager.free_anon(100, pages_from_mb(100));
  bool done = false;
  fx.manager.touch_working_set(200, 0, pages_from_mb(80), 0, [&](bool ok) { done = ok; });
  fx.engine.run();
  EXPECT_TRUE(done);
  EXPECT_LT(fx.manager.registry().find(200)->anon_swapped, swapped_before);
  EXPECT_GT(fx.manager.vmstat().pswpin, 0u);
}

TEST(MemoryManagerImmediate, VmstatTracksScansAndSteals) {
  ImmediateFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.alloc_anon(100, pages_from_mb(185), 0, nullptr);
  const auto& vm = fx.manager.vmstat();
  EXPECT_GT(vm.pgscan_kswapd, 0u);
  EXPECT_GT(vm.pgsteal_kswapd, 0u);
  EXPECT_GT(vm.kswapd_wakeups, 0u);
}

// -------- Scheduled-mode MemoryManager ---------------------------------------

struct ScheduledFixture {
  sim::Engine engine;
  trace::Tracer tracer;
  sched::Scheduler scheduler;
  storage::StorageDevice storage;
  MemoryManager manager;

  explicit ScheduledFixture(const MemoryConfig& config = small_config())
      : scheduler(engine, tracer, sched_config()),
        storage(engine, scheduler, storage::StorageConfig{}),
        manager(engine, config, scheduler, storage, tracer) {}

  static sched::SchedulerConfig sched_config() {
    sched::SchedulerConfig config;
    config.cores = std::vector<sched::CoreConfig>(4, sched::CoreConfig{1.0});
    return config;
  }

  sched::ThreadId make_app_thread(const std::string& name, ProcessId pid) {
    sched::ThreadSpec spec;
    spec.name = name;
    spec.pid = pid;
    spec.process_name = "app" + std::to_string(pid);
    return scheduler.create_thread(spec);
  }
};

TEST(MemoryManagerScheduled, FastPathAllocIsSynchronous) {
  ScheduledFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  bool ok = false;
  fx.manager.alloc_anon(100, pages_from_mb(2), 0, [&](bool success) { ok = success; });
  EXPECT_TRUE(ok);  // no engine.run() needed: fast path
}

TEST(MemoryManagerScheduled, KswapdRunsOnCpuWhenWoken) {
  ScheduledFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.register_process(200, "cached", OomAdj::kCached);
  fx.manager.registry().set_killable(200, false);
  fx.manager.alloc_anon(200, pages_from_mb(60), 0, nullptr);
  fx.manager.alloc_anon(100, pages_from_mb(160), 0, [](bool) {});
  fx.engine.run_until(sec(5));
  fx.tracer.finalize(fx.engine.now());
  const auto times = trace::state_times(fx.tracer, {fx.manager.kswapd_tid()});
  EXPECT_GT(times.running, 0.0);
  EXPECT_GT(fx.manager.zram_stored(), 0);
}

TEST(MemoryManagerScheduled, DirectReclaimStallsAllocatingThread) {
  ScheduledFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.register_process(200, "cached", OomAdj::kCached);
  fx.manager.alloc_anon(200, pages_from_mb(100), 0, nullptr);
  const auto tid = fx.make_app_thread("allocator", 100);

  // Fill memory close to the wire synchronously first.
  fx.manager.alloc_anon(100, pages_from_mb(80), 0, nullptr);
  sim::Time alloc_done = -1;
  fx.engine.schedule(msec(10), [&] {
    fx.manager.alloc_anon(100, pages_from_mb(12), tid, [&](bool ok) {
      ASSERT_TRUE(ok);
      alloc_done = fx.engine.now();
    });
  });
  fx.engine.run_until(sec(10));
  EXPECT_GT(alloc_done, msec(10));  // the allocation was not instantaneous
  EXPECT_GT(fx.manager.vmstat().direct_reclaim_entries, 0u);
}

TEST(MemoryManagerScheduled, WritebackGoesThroughMmcqd) {
  ScheduledFixture fx;
  fx.manager.register_process(100, "app", OomAdj::kForeground);
  fx.manager.registry().set_killable(100, false);
  fx.manager.dirty_file(pages_from_mb(40));
  fx.manager.alloc_anon(100, pages_from_mb(280), 0, [](bool) {});
  fx.engine.run_until(sec(20));
  EXPECT_GT(fx.storage.counters().writes, 0u);
  EXPECT_GT(fx.manager.vmstat().pgpgout, 0u);
}

TEST(MemoryManagerScheduled, FileRefaultsReadFromStorage) {
  ScheduledFixture fx;
  fx.manager.register_process(100, "fg", OomAdj::kForeground);
  fx.manager.map_file(100, pages_from_mb(20), 0, nullptr);
  fx.engine.run_until(sec(1));
  // Force eviction of the file pages.
  fx.manager.register_process(300, "hog", OomAdj::kVisible);
  fx.manager.alloc_anon(300, pages_from_mb(165), 0, nullptr);
  fx.engine.run_until(sec(10));
  const auto* fg = fx.manager.registry().find(100);
  ASSERT_NE(fg, nullptr);
  ASSERT_LT(fg->file_resident, pages_from_mb(20));

  const auto reads_before = fx.storage.counters().reads;
  const auto tid = fx.make_app_thread("toucher", 100);
  bool done = false;
  fx.manager.touch_working_set(100, tid, 0, pages_from_mb(20), [&](bool ok) { done = ok; });
  fx.engine.run_until(sec(20));
  EXPECT_TRUE(done);
  EXPECT_GT(fx.storage.counters().reads, reads_before);
  EXPECT_GT(fx.manager.vmstat().pgpgin, 0u);
}

TEST(MemoryManagerScheduled, ForegroundKilledOnlyAtExtremePressure) {
  ScheduledFixture fx;
  bool fg_killed = false;
  fx.manager.register_process(100, "fg", OomAdj::kForeground, [&] { fg_killed = true; });
  // No cached processes at all: over-allocating must eventually make the
  // foreground itself eligible (P >= 95).
  fx.manager.alloc_anon(100, pages_from_mb(500), 0, [](bool) {});
  fx.engine.run_until(sec(30));
  EXPECT_TRUE(fg_killed);
  EXPECT_FALSE(fx.manager.registry().alive(100));
}

TEST(MemoryManagerScheduled, PendingWaiterSatisfiedAfterKillFreesMemory) {
  // Tiny zram so compression alone cannot satisfy demand: lmkd must kill.
  MemoryConfig config = small_config();
  config.zram_capacity = pages_from_mb(8);
  ScheduledFixture fx(config);
  fx.manager.register_process(100, "fg", OomAdj::kForeground);
  for (ProcessId pid = 10; pid < 14; ++pid) {
    fx.manager.register_process(pid, "cached", OomAdj::kCached);
    fx.manager.alloc_anon(pid, pages_from_mb(30), 0, nullptr);
  }
  // Exhaust most memory (zram is small enough that kills are required).
  fx.manager.alloc_anon(100, pages_from_mb(60), 0, nullptr);
  bool satisfied = false;
  fx.manager.alloc_anon(100, pages_from_mb(40), 0, [&](bool ok) { satisfied = ok; });
  fx.engine.run_until(sec(30));
  EXPECT_TRUE(satisfied);
  EXPECT_GT(fx.manager.vmstat().kills_lmkd, 0u);
}

}  // namespace
}  // namespace mvqoe::mem
