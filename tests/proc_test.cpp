#include <gtest/gtest.h>

#include "proc/activity_manager.hpp"

namespace mvqoe::proc {
namespace {

using mem::OomAdj;
using mem::pages_from_mb;

struct Fixture {
  sim::Engine engine;
  mem::MemoryManager memory{engine, config()};
  ActivityManager am{memory};

  static mem::MemoryConfig config() {
    mem::MemoryConfig config;
    // Roomy enough that boot populations never trigger lmkd in these
    // lifecycle tests.
    config.total = pages_from_mb(2048);
    config.kernel_reserved = pages_from_mb(200);
    return config;
  }
};

TEST(AppCatalog, TopFreeAppsHaveNoGamesAndRealFootprints) {
  const auto& apps = top_free_apps();
  ASSERT_GE(apps.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(apps[i].is_game);
    EXPECT_GT(apps[i].heap_pages, 0);
    EXPECT_GT(apps[i].code_pages, 0);
  }
}

TEST(AppCatalog, GamesAreHeavierThanAverageApp) {
  mem::Pages app_total = 0;
  for (const auto& app : top_free_apps()) app_total += app.heap_pages;
  const mem::Pages app_mean = app_total / static_cast<mem::Pages>(top_free_apps().size());
  for (const auto& game : game_apps()) {
    EXPECT_TRUE(game.is_game);
    EXPECT_GT(game.heap_pages, app_mean);
  }
}

TEST(AppCatalog, SystemProcessesScaleWithFactor) {
  const auto small = system_processes(1.0);
  const auto large = system_processes(2.0);
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_GE(large[i].heap_pages, small[i].heap_pages);
  }
}

TEST(AppCatalog, BaselineCachedAppsTrimmed) {
  const auto cached = baseline_cached_apps(10);
  ASSERT_EQ(cached.size(), 10u);
  // Names must be unique so each registers as a distinct process.
  for (std::size_t i = 1; i < cached.size(); ++i) {
    EXPECT_NE(cached[i].name, cached[0].name);
  }
  EXPECT_LT(cached[0].heap_pages, top_free_apps()[0].heap_pages);
}

TEST(ActivityManager, BootPopulatesSystemAndCachedLru) {
  Fixture fx;
  fx.am.boot(1.0, 8);
  EXPECT_EQ(fx.am.cached_count(), 8);
  EXPECT_GT(fx.memory.anon_pages(), 0);
  EXPECT_GT(fx.memory.file_pages(), 0);
}

TEST(ActivityManager, LaunchMakesAppForegroundAndPreviousCached) {
  Fixture fx;
  const auto first = fx.am.launch(top_free_apps()[0]);
  EXPECT_EQ(fx.am.foreground(), first);
  EXPECT_EQ(fx.memory.registry().find(first)->oom_adj, OomAdj::kForeground);

  const auto second = fx.am.launch(top_free_apps()[1]);
  EXPECT_EQ(fx.am.foreground(), second);
  EXPECT_EQ(fx.memory.registry().find(first)->oom_adj, OomAdj::kCached);
}

TEST(ActivityManager, BringToForegroundSwapsRoles) {
  Fixture fx;
  const auto a = fx.am.launch(top_free_apps()[0]);
  const auto b = fx.am.launch(top_free_apps()[1]);
  fx.am.bring_to_foreground(a);
  EXPECT_EQ(fx.am.foreground(), a);
  EXPECT_EQ(fx.memory.registry().find(b)->oom_adj, OomAdj::kCached);
  EXPECT_EQ(fx.memory.registry().find(a)->oom_adj, OomAdj::kForeground);
}

TEST(ActivityManager, CloseFreesMemory) {
  Fixture fx;
  const auto pid = fx.am.launch(top_free_apps()[0]);
  const auto used = fx.memory.anon_pages();
  EXPECT_GT(used, 0);
  fx.am.close(pid);
  EXPECT_LT(fx.memory.anon_pages(), used);
  EXPECT_FALSE(fx.memory.registry().alive(pid));
  EXPECT_EQ(fx.am.foreground(), 0u);
}

TEST(ActivityManager, PidsAreMonotonic) {
  Fixture fx;
  const auto a = fx.am.launch(top_free_apps()[0]);
  const auto b = fx.am.launch(top_free_apps()[1]);
  EXPECT_GT(b, a);
}

TEST(ActivityManager, KillCallbackPropagatesFromLmkd) {
  Fixture fx;
  bool killed = false;
  const auto pid = fx.am.launch(top_free_apps()[0], [&] { killed = true; });
  fx.am.move_to_background(pid);
  fx.memory.kill_process(pid);
  fx.engine.run();
  EXPECT_TRUE(killed);
}

}  // namespace
}  // namespace mvqoe::proc
