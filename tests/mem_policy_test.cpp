// Differential tests for the pluggable reclaim/kill policy layer
// (DESIGN.md §16): the factory registry, the KillCharter contract the
// oracles replay against, scenario/campaign serialization of the policy
// axis, and — the load-bearing part — that the four registered policies
// are deterministic individually and pairwise distinct on a reference
// scenario, while the baseline stays byte-identical to the pre-policy
// encoder (SCEN v2, no config-tail bytes).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/policy_campaign.hpp"
#include "campaign/sweep_campaign.hpp"
#include "fleet/spec.hpp"
#include "mem/policy.hpp"
#include "runner/video_batch.hpp"
#include "scenario/driver.hpp"
#include "scenario/spec.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe {
namespace {

// --- registry + factory ------------------------------------------------------

TEST(PolicyFactory, RegistersFourPoliciesInFactoryOrder) {
  const std::vector<std::string> expected = {"baseline", "swam", "ariadne", "partitioned"};
  EXPECT_EQ(mem::mem_policy_names(), expected);
  const mem::MemoryConfig config;
  for (const std::string& name : expected) {
    const auto policy = mem::make_mem_policy(mem::MemPolicySpec{name, {}}, config);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
    EXPECT_EQ(policy->charter().policy_name, name);
  }
}

TEST(PolicyFactory, RejectsUnknownNamesAndForeignParameters) {
  const mem::MemoryConfig config;
  EXPECT_THROW(mem::make_mem_policy({"lru2q", {}}, config), std::invalid_argument);
  EXPECT_THROW(mem::validate_policy_spec({"lru2q", {}}), std::invalid_argument);
  // Each policy only accepts its own declared parameters.
  EXPECT_THROW(mem::make_mem_policy({"baseline", {{"reserve_mb", 10.0}}}, config),
               std::invalid_argument);
  EXPECT_THROW(mem::make_mem_policy({"swam", {{"hot_cut_refus", 1.0}}}, config),
               std::invalid_argument);
  // Out-of-range values are rejected at construction.
  EXPECT_THROW(mem::make_mem_policy({"swam", {{"swap_full_fraction", 1.5}}}, config),
               std::invalid_argument);
  EXPECT_THROW(mem::make_mem_policy({"swam", {{"kill_cooldown_ms", -1.0}}}, config),
               std::invalid_argument);
  EXPECT_THROW(mem::make_mem_policy({"ariadne", {{"cold_ratio", 0.5}}}, config),
               std::invalid_argument);
  EXPECT_THROW(mem::make_mem_policy({"partitioned", {{"reserve_mb", -2.0}}}, config),
               std::invalid_argument);
}

// --- the charter contract ----------------------------------------------------

// A default-constructed KillCharter IS the baseline on the default
// MemoryConfig: the observe layer hands the oracle whatever charter the
// world runs, and this pin keeps the two default surfaces from drifting
// apart silently.
TEST(KillCharter, DefaultCharterMatchesDefaultMemoryConfig) {
  const mem::MemoryConfig config;
  const mem::KillCharter charter = mem::kill_charter_for({"baseline", {}}, config);
  const mem::KillCharter defaults;
  EXPECT_EQ(charter.kill_threshold, config.lmkd_kill_threshold);
  EXPECT_EQ(charter.foreground_threshold, config.lmkd_foreground_threshold);
  EXPECT_EQ(charter.background_adj_floor, config.lmkd_background_adj_floor);
  EXPECT_EQ(charter.minfree_cached, config.minfree_cached);
  EXPECT_EQ(charter.minfree_service, config.minfree_service);
  EXPECT_EQ(charter.minfree_perceptible, config.minfree_perceptible);
  EXPECT_EQ(charter.minfree_foreground, config.minfree_foreground);
  EXPECT_EQ(charter.kill_threshold, defaults.kill_threshold);
  EXPECT_EQ(charter.foreground_threshold, defaults.foreground_threshold);
  EXPECT_EQ(charter.background_adj_floor, defaults.background_adj_floor);
  EXPECT_EQ(charter.minfree_cached, defaults.minfree_cached);
  EXPECT_EQ(charter.minfree_service, defaults.minfree_service);
  EXPECT_EQ(charter.minfree_perceptible, defaults.minfree_perceptible);
  EXPECT_EQ(charter.minfree_foreground, defaults.minfree_foreground);
  EXPECT_EQ(charter.kill_cooldown, defaults.kill_cooldown);
  EXPECT_EQ(charter.victim_rule, mem::KillCharter::VictimRule::HighestAdj);
  EXPECT_EQ(charter.reserve_pages, 0);
  EXPECT_TRUE(charter.swap_aware_escalation);
  EXPECT_EQ(charter.swap_full_kill_fraction, 1.0);
}

TEST(KillCharter, ReplayKillFloorCoversTheBaselineBands) {
  const mem::KillCharter charter;
  const mem::Pages plenty = mem::pages_from_mb(200);
  const mem::Pages zcap = mem::pages_from_mb(450);
  // Quiet world: no band demands a kill.
  EXPECT_EQ(mem::replay_kill_floor(charter, 30.0, plenty, 0, zcap), mem::kNoKillFloor);
  // Background band: 60 < P < 95.
  EXPECT_EQ(mem::replay_kill_floor(charter, 70.0, plenty, 0, zcap), mem::OomAdj::kService);
  // Critical P with swap still plentiful stays on the background floor.
  EXPECT_EQ(mem::replay_kill_floor(charter, 96.0, plenty, 0, zcap), mem::OomAdj::kService);
  // Critical P with swap nearly exhausted reaches the foreground.
  EXPECT_EQ(mem::replay_kill_floor(charter, 96.0, plenty, zcap, zcap), mem::OomAdj::kForeground);
  // minfree ladder, top to bottom.
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, mem::pages_from_mb(40), 0, zcap),
            mem::OomAdj::kCached);
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, mem::pages_from_mb(25), 0, zcap),
            mem::OomAdj::kService);
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, mem::pages_from_mb(15), 0, zcap),
            mem::OomAdj::kPerceptible);
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, mem::pages_from_mb(10), 0, zcap),
            mem::OomAdj::kForeground);
}

TEST(KillCharter, SwamPublishesJointSwapKillRules) {
  const mem::MemoryConfig config;
  const mem::KillCharter charter = mem::kill_charter_for({"swam", {}}, config);
  EXPECT_EQ(charter.victim_rule, mem::KillCharter::VictimRule::FloorOnly);
  EXPECT_EQ(charter.swap_full_kill_fraction, 0.85);
  EXPECT_EQ(charter.kill_cooldown, sim::msec(250));
  // A nearly-full zRAM store demands background kills at zero pressure —
  // the joint swap/kill decision the baseline never makes.
  const mem::Pages plenty = mem::pages_from_mb(200);
  const mem::Pages zcap = config.zram_capacity;
  const mem::Pages nearly_full = static_cast<mem::Pages>(0.9 * static_cast<double>(zcap));
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, plenty, nearly_full, zcap),
            charter.background_adj_floor);
  const mem::KillCharter baseline;
  EXPECT_EQ(mem::replay_kill_floor(baseline, 0.0, plenty, nearly_full, zcap), mem::kNoKillFloor);
  // The fraction is tunable through the spec params.
  const mem::KillCharter tuned =
      mem::kill_charter_for({"swam", {{"swap_full_fraction", 0.5}}}, config);
  EXPECT_EQ(tuned.swap_full_kill_fraction, 0.5);
}

TEST(KillCharter, PartitionedReserveFiresBackgroundLevelsEarly) {
  const mem::MemoryConfig config;
  const mem::KillCharter charter = mem::kill_charter_for({"partitioned", {}}, config);
  EXPECT_EQ(charter.reserve_pages, config.minfree_perceptible);
  const mem::Pages zcap = config.zram_capacity;
  // Available memory the baseline ladder considers safe trips the
  // reserved ladder: the carve-out is already spoken for.
  const mem::Pages above_cached = config.minfree_cached + charter.reserve_pages / 2;
  const mem::KillCharter baseline;
  EXPECT_EQ(mem::replay_kill_floor(baseline, 0.0, above_cached, 0, zcap), mem::kNoKillFloor);
  EXPECT_EQ(mem::replay_kill_floor(charter, 0.0, above_cached, 0, zcap), mem::OomAdj::kCached);
  // The bottom (save-the-foreground) level reads the raw number: a
  // reserve makes background kills earlier, never foreground kills.
  const mem::Pages scraping = config.minfree_foreground + charter.reserve_pages / 2;
  EXPECT_LT(mem::replay_kill_floor(charter, 0.0, scraping, 0, zcap), mem::OomAdj::kService);
  EXPECT_GT(mem::replay_kill_floor(charter, 0.0, scraping, 0, zcap), mem::OomAdj::kForeground);
  // The reserve is tunable; 0 restores Android's ladder.
  const mem::KillCharter flat = mem::kill_charter_for({"partitioned", {{"reserve_mb", 0.0}}},
                                                      config);
  EXPECT_EQ(flat.reserve_pages, 0);
  EXPECT_EQ(mem::replay_kill_floor(flat, 0.0, above_cached, 0, zcap), mem::kNoKillFloor);
}

// --- serialization of the policy axis ---------------------------------------

TEST(PolicySpec, RoundTripsThroughBytesWithParams) {
  mem::MemPolicySpec spec;
  spec.name = "swam";
  spec.params = {{"swap_full_fraction", 0.7}, {"kill_cooldown_ms", 500.0}};
  snapshot::ByteWriter w;
  mem::save_policy_spec(w, spec);
  const std::string bytes = std::move(w).take();
  snapshot::ByteReader r(bytes);
  EXPECT_EQ(mem::load_policy_spec(r), spec);
  EXPECT_TRUE(r.done());
}

TEST(PolicySpec, BaselineScenarioKeepsTheV2Encoding) {
  scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 480, 30, 8, mem::PressureLevel::Low, 7);
  snapshot::ByteWriter w;
  scenario::save_scenario(w, scen);
  const std::string baseline_bytes = std::move(w).take();
  {
    snapshot::ByteReader r(baseline_bytes);
    EXPECT_EQ(r.u32(), 2u) << "a baseline scenario must stay on the pre-policy SCEN version";
  }
  scen.mem_policy.name = "ariadne";
  snapshot::ByteWriter w3;
  scenario::save_scenario(w3, scen);
  const std::string policy_bytes = std::move(w3).take();
  {
    snapshot::ByteReader r(policy_bytes);
    EXPECT_EQ(r.u32(), 3u);
  }
  snapshot::ByteReader r(policy_bytes);
  const scenario::ScenarioSpec back = scenario::load_scenario(r);
  EXPECT_EQ(back.mem_policy.name, "ariadne");
}

TEST(PolicySpec, CampaignAndFleetConfigsCarryThePolicyAxis) {
  campaign::SweepCampaignSpec sweep;
  sweep.mem_policy = {"swam", {{"swap_full_fraction", 0.7}}};
  const campaign::SweepCampaignSpec sweep_back =
      campaign::decode_sweep_config(campaign::encode_sweep_config(sweep));
  EXPECT_EQ(sweep_back.mem_policy, sweep.mem_policy);
  campaign::SweepCampaignSpec plain;
  EXPECT_NE(campaign::sweep_config_fingerprint(sweep), campaign::sweep_config_fingerprint(plain));
  // Baseline encodes to *nothing*: no policy tail, so historical
  // checkpoint fingerprints are untouched by this refactor.
  EXPECT_LT(campaign::encode_sweep_config(plain).size(),
            campaign::encode_sweep_config(sweep).size());

  fleet::FleetSpec fl;
  fl.mem_policy = {"partitioned", {{"reserve_mb", 32.0}}};
  const fleet::FleetSpec fl_back = fleet::decode_fleet_config(fleet::encode_fleet_config(fl));
  EXPECT_EQ(fl_back.mem_policy, fl.mem_policy);
  fleet::FleetSpec fl_plain;
  EXPECT_LT(fleet::encode_fleet_config(fl_plain).size(), fleet::encode_fleet_config(fl).size());

  campaign::PolicyCompareSpec compare;
  compare.base.duration_s = 8;
  compare.base.states = {mem::PressureLevel::Low};
  compare.base.fps = {30};
  compare.base.heights = {480};
  compare.base.runs = 2;
  for (const std::string& name : mem::mem_policy_names()) {
    compare.policies.push_back({name, {}});
  }
  const campaign::PolicyCompareSpec compare_back =
      campaign::decode_policy_config(campaign::encode_policy_config(compare));
  ASSERT_EQ(compare_back.policies.size(), compare.policies.size());
  for (std::size_t i = 0; i < compare.policies.size(); ++i) {
    EXPECT_EQ(compare_back.policies[i], compare.policies[i]);
  }
  EXPECT_EQ(campaign::policy_total_units(compare),
            compare.policies.size() * campaign::sweep_total_units(compare.base));
}

// --- reference-scenario differential suite -----------------------------------

scenario::ScenarioSpec reference_spec(const std::string& policy) {
  scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 480, 30, 10, mem::PressureLevel::Low, 7);
  scen.mem_policy.name = policy;
  return scen;
}

struct ReferenceRun {
  std::uint64_t digest = 0;
  bool has_mpol = false;
  /// (at, pid, oom_adj, min_adj) per kill, in time order.
  std::vector<std::tuple<sim::Time, mem::ProcessId, int, int>> kills;
  std::vector<std::string> kill_policy_names;
};

ReferenceRun run_reference(const std::string& policy) {
  scenario::ScenarioDriver driver(reference_spec(policy));
  driver.run();
  ReferenceRun out;
  out.digest = driver.state_digest();
  for (const auto& [name, digest] : driver.subsystem_digests()) {
    if (name == "mem-policy") out.has_mpol = true;
  }
  for (const mem::MemoryManager::KillAudit& kill : driver.testbed().memory.kill_audits()) {
    out.kills.emplace_back(kill.at, kill.pid, kill.oom_adj, kill.min_adj);
    out.kill_policy_names.push_back(kill.policy_name);
  }
  return out;
}

// Each policy is deterministic run-to-run, every kill audit names the
// deciding policy, and only ariadne (per-process hotness + tiered store)
// registers an MPOL snapshot section.
TEST(PolicyDifferential, EachPolicyIsDeterministicAndAuditsItsKills) {
  for (const std::string& name : mem::mem_policy_names()) {
    const ReferenceRun first = run_reference(name);
    const ReferenceRun second = run_reference(name);
    EXPECT_EQ(first.digest, second.digest) << name;
    EXPECT_EQ(first.kills, second.kills) << name;
    EXPECT_FALSE(first.kills.empty())
        << name << ": the reference scenario must exercise the kill path";
    for (const std::string& audited : first.kill_policy_names) {
      EXPECT_EQ(audited, name);
    }
    EXPECT_EQ(first.has_mpol, name == "ariadne") << name;
  }
}

// The whole point of the lab: on one identically-seeded world, the four
// policies make pairwise-different kill decisions.
TEST(PolicyDifferential, PoliciesProducePairwiseDistinctKillSequences) {
  std::vector<ReferenceRun> runs;
  for (const std::string& name : mem::mem_policy_names()) {
    runs.push_back(run_reference(name));
  }
  for (std::size_t a = 0; a < runs.size(); ++a) {
    for (std::size_t b = a + 1; b < runs.size(); ++b) {
      EXPECT_NE(runs[a].kills, runs[b].kills)
          << mem::mem_policy_names()[a] << " vs " << mem::mem_policy_names()[b];
      EXPECT_NE(runs[a].digest, runs[b].digest)
          << mem::mem_policy_names()[a] << " vs " << mem::mem_policy_names()[b];
    }
  }
}

// The compare campaign's baseline lane IS the plain sweep campaign: the
// policy-major unit mapping may never perturb the mechanism's results.
TEST(PolicyCompare, BaselineLaneMatchesPlainSweepByteForByte) {
  campaign::SweepCampaignSpec base;
  base.duration_s = 8;
  base.states = {mem::PressureLevel::Low};
  base.fps = {30};
  base.heights = {480};
  base.runs = 2;
  base.seed = 5;

  campaign::PolicyCompareSpec compare;
  compare.base = base;
  for (const std::string& name : mem::mem_policy_names()) {
    compare.policies.push_back({name, {}});
  }
  const campaign::PolicyCompareResult result =
      campaign::run_policy_compare(compare, campaign::CampaignOptions{});
  ASSERT_TRUE(result.campaign.complete);
  ASSERT_EQ(result.lanes.size(), 4u);

  const campaign::SweepCampaignResult plain =
      campaign::run_sweep_campaign(base, campaign::CampaignOptions{});
  ASSERT_TRUE(plain.campaign.complete);
  EXPECT_EQ(runner::sweep_json("lane", result.lanes[0].cells, base.runs, 1, base.seed),
            runner::sweep_json("lane", plain.cells, base.runs, 1, base.seed));

  // And the four lanes are pairwise distinct grids.
  for (std::size_t a = 0; a < result.lanes.size(); ++a) {
    for (std::size_t b = a + 1; b < result.lanes.size(); ++b) {
      EXPECT_NE(runner::sweep_json("lane", result.lanes[a].cells, base.runs, 1, base.seed),
                runner::sweep_json("lane", result.lanes[b].cells, base.runs, 1, base.seed))
          << result.lanes[a].policy.name << " vs " << result.lanes[b].policy.name;
    }
  }
}

}  // namespace
}  // namespace mvqoe
