// Additional memory-manager coverage: hot floors, pressure decay,
// minfree bands, unevictable processes, writeback interleaving and the
// OOM-killer escalation path.
#include <gtest/gtest.h>

#include "mem/memory_manager.hpp"
#include "trace/analysis.hpp"

namespace mvqoe::mem {
namespace {

using sim::msec;
using sim::sec;

MemoryConfig tight_config() {
  MemoryConfig config;
  config.total = pages_from_mb(256);
  config.kernel_reserved = pages_from_mb(64);
  config.zram_capacity = pages_from_mb(64);
  config.watermark_min = pages_from_mb(4);
  config.watermark_low = pages_from_mb(12);
  config.watermark_high = pages_from_mb(20);
  config.minfree_cached = pages_from_mb(28);
  config.minfree_service = pages_from_mb(18);
  config.minfree_perceptible = pages_from_mb(12);
  config.minfree_foreground = pages_from_mb(6);
  return config;
}

TEST(MemEdge, HotPagesResistCompression) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "fg", OomAdj::kForeground);
  manager.register_process(2, "protected", OomAdj::kCached);
  manager.registry().set_killable(2, false);
  manager.alloc_anon(2, pages_from_mb(60), 0, nullptr);
  manager.set_hot_pages(2, pages_from_mb(60));  // everything hot

  manager.alloc_anon(1, pages_from_mb(120), 0, [](bool) {});
  engine.run_until(sec(5));
  // The protected process's pages never went to zram.
  const auto* process = manager.registry().find(2);
  ASSERT_NE(process, nullptr);
  EXPECT_EQ(process->anon_swapped, 0);
}

TEST(MemEdge, HotFloorClampsToProcessSize) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "p", OomAdj::kForeground);
  manager.alloc_anon(1, pages_from_mb(10), 0, nullptr);
  manager.set_hot_pages(1, pages_from_mb(500));  // absurd request
  EXPECT_EQ(manager.registry().find(1)->hot_pages, pages_from_mb(10));
  manager.set_hot_pages(1, -5);
  EXPECT_EQ(manager.registry().find(1)->hot_pages, 0);
}

TEST(MemEdge, UnevictableProcessExcludedFromReclaimEntirely) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "fg", OomAdj::kForeground);
  manager.register_process(2, "pinned", OomAdj::kCached);
  manager.registry().set_killable(2, false);
  manager.registry().find(2)->unevictable = true;
  manager.alloc_anon(2, pages_from_mb(60), 0, nullptr);
  // hot_pages left at 0: only the unevictable flag protects it.
  manager.alloc_anon(1, pages_from_mb(120), 0, [](bool) {});
  engine.run_until(sec(5));
  EXPECT_EQ(manager.registry().find(2)->anon_swapped, 0);
}

TEST(MemEdge, PressureDecaysAfterScanningStops) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "fg", OomAdj::kForeground);
  manager.registry().set_killable(1, false);
  manager.set_hot_pages(1, 0);
  // Exhaust memory so P saturates.
  manager.alloc_anon(1, pages_from_mb(400), 0, [](bool) {});
  const double peak = manager.pressure_P();
  EXPECT_GT(peak, 50.0);
  // Free everything: reclaim stops; P must decay over time.
  manager.free_anon(1, pages_from_mb(400));
  engine.run_until(engine.now() + sec(10));
  EXPECT_LT(manager.pressure_P(), peak / 4.0);
}

TEST(MemEdge, MinfreeBandsEscalateWithDepth) {
  sim::Engine engine;
  MemoryConfig config = tight_config();
  MemoryManager manager(engine, config);
  manager.register_process(1, "driver", OomAdj::kForeground);
  manager.registry().set_killable(1, false);
  manager.registry().find(1)->unevictable = true;
  manager.register_process(10, "cached", OomAdj::kCached);
  manager.register_process(11, "svc", OomAdj::kService);
  manager.register_process(12, "perceptible", OomAdj::kPerceptible);
  manager.alloc_anon(10, pages_from_mb(8), 0, nullptr);
  manager.alloc_anon(11, pages_from_mb(8), 0, nullptr);
  manager.alloc_anon(12, pages_from_mb(8), 0, nullptr);

  // Drive available memory down step by step; victims must die in
  // cached -> service -> perceptible order.
  std::vector<int> kill_order;
  for (const ProcessId pid : {10u, 11u, 12u}) {
    manager.registry().find(pid)->on_kill = [&kill_order, pid] {
      kill_order.push_back(static_cast<int>(pid));
    };
  }
  for (int i = 0; i < 60 && kill_order.size() < 3; ++i) {
    manager.alloc_anon(1, pages_from_mb(3), 0, [](bool) {});
    engine.run_until(engine.now() + sec(1));
  }
  ASSERT_EQ(kill_order.size(), 3u);
  EXPECT_EQ(kill_order[0], 10);
  EXPECT_EQ(kill_order[1], 11);
  EXPECT_EQ(kill_order[2], 12);
}

TEST(MemEdge, DirtyWritebackInterleavesWithCompression) {
  sim::Engine engine;
  trace::Tracer tracer;
  sched::SchedulerConfig sched_config;
  sched_config.cores = std::vector<sched::CoreConfig>(2, sched::CoreConfig{1.0});
  sched::Scheduler scheduler(engine, tracer, sched_config);
  storage::StorageDevice storage(engine, scheduler, storage::StorageConfig{});
  MemoryManager manager(engine, tight_config(), scheduler, storage, tracer);

  manager.register_process(1, "fg", OomAdj::kForeground);
  manager.registry().set_killable(1, false);
  manager.dirty_file(pages_from_mb(24));
  // Demand past free + zram capacity: once compression saturates, reclaim
  // must write the dirty pages back.
  manager.alloc_anon(1, pages_from_mb(280), 0, [](bool) {});
  engine.run_until(sec(30));
  // Both mechanisms ran: zram grew AND dirty pages were written back.
  EXPECT_GT(manager.vmstat().pswpout, 0u);
  EXPECT_GT(manager.vmstat().pgpgout, 0u);
  EXPECT_GT(storage.counters().writes, 0u);
}

TEST(MemEdge, OomKillerEscalatesToForegroundWhenNothingElseLeft) {
  sim::Engine engine;
  trace::Tracer tracer;
  sched::SchedulerConfig sched_config;
  sched_config.cores = {sched::CoreConfig{1.0}};
  sched::Scheduler scheduler(engine, tracer, sched_config);
  storage::StorageDevice storage(engine, scheduler, storage::StorageConfig{});
  MemoryManager manager(engine, tight_config(), scheduler, storage, tracer);

  bool foreground_killed = false;
  manager.register_process(1, "fg", OomAdj::kForeground, [&] { foreground_killed = true; });
  manager.set_hot_pages(1, 0);
  // No other processes at all: a parked allocation can only be satisfied
  // by killing the allocator itself.
  manager.alloc_anon(1, pages_from_mb(100), 0, nullptr);
  engine.run_until(sec(1));
  manager.set_hot_pages(1, pages_from_mb(100));  // pin so reclaim cannot help
  manager.alloc_anon(1, pages_from_mb(200), 0, [](bool) {});
  engine.run_until(sec(30));
  EXPECT_TRUE(foreground_killed);
}

TEST(MemEdge, TrimSignalCountsMatchTransitions) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  // Listeners hear every transition (including back to Normal); the
  // vmstat counters track only the non-Normal onTrimMemory deliveries.
  int deliveries = 0;
  manager.subscribe_trim([&deliveries](PressureLevel level) {
    if (level != PressureLevel::Normal) ++deliveries;
  });
  manager.register_process(1, "fg", OomAdj::kForeground);
  for (ProcessId pid = 10; pid < 18; ++pid) {
    manager.register_process(pid, "cached", OomAdj::kCached);
    manager.alloc_anon(pid, pages_from_mb(6), 0, nullptr);
  }
  manager.alloc_anon(1, pages_from_mb(150), 0, [](bool) {});
  engine.run_until(sec(5));
  const auto& vm = manager.vmstat();
  const auto counted = vm.trim_signals[1] + vm.trim_signals[2] + vm.trim_signals[3];
  EXPECT_EQ(static_cast<std::uint64_t>(deliveries), counted);
  EXPECT_GT(deliveries, 0);
}

TEST(MemEdge, MapFileRaisesWorkingSetAndUnmapLowersIt) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "app", OomAdj::kForeground);
  manager.map_file(1, pages_from_mb(10), 0, nullptr);
  EXPECT_EQ(manager.registry().find(1)->file_working_set, pages_from_mb(10));
  manager.unmap_file(1, pages_from_mb(4));
  EXPECT_EQ(manager.registry().find(1)->file_working_set, pages_from_mb(6));
  EXPECT_EQ(manager.registry().find(1)->file_resident, pages_from_mb(6));
}

TEST(MemEdge, TouchOnDeadProcessFailsGracefully) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  bool called = false;
  bool ok = true;
  manager.touch_working_set(404, 0, 100, 100, [&](bool success) {
    called = true;
    ok = success;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(MemEdge, FreeMoreThanOwnedClampsSafely) {
  sim::Engine engine;
  MemoryManager manager(engine, tight_config());
  manager.register_process(1, "app", OomAdj::kForeground);
  manager.alloc_anon(1, pages_from_mb(10), 0, nullptr);
  manager.free_anon(1, pages_from_mb(999));
  EXPECT_EQ(manager.registry().find(1)->anon_resident, 0);
  EXPECT_EQ(manager.anon_pages(), 0);
  EXPECT_GE(manager.free_pages(), 0);
}

}  // namespace
}  // namespace mvqoe::mem
