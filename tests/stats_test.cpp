#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace mvqoe::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DeriveSeedProducesDistinctStreams) {
  const auto s1 = derive_seed(7, 0);
  const auto s2 = derive_seed(7, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, derive_seed(7, 0));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(6);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(7);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 4.0, 0.15);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(8);
  Accumulator small;
  Accumulator large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(2.5)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 2.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, SaveRestoreRoundTripsExactly) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) rng.next();
  const Rng::State saved = rng.save_state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 1000; ++i) expected.push_back(rng.next());

  Rng restored(1);  // different seed: restore must fully overwrite
  restored.restore_state(saved);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(restored.next(), expected[i]);
}

TEST(Rng, SaveRestoreCapturesSpareNormal) {
  // The Marsaglia polar method caches a second normal; a checkpoint taken
  // between the pair must replay the cached value, not redraw it.
  Rng rng(123);
  (void)rng.normal();  // leaves a spare cached
  const Rng::State saved = rng.save_state();
  const double expected_next_normal = rng.normal();

  Rng restored(456);
  restored.restore_state(saved);
  EXPECT_EQ(restored.normal(), expected_next_normal);
  // And the streams stay locked after the spare is consumed.
  Rng replay(123);
  (void)replay.normal();
  replay.restore_state(saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replay.next(), restored.next());
}

TEST(Rng, StateEqualityDetectsPerturbation) {
  Rng rng(9);
  Rng::State a = rng.save_state();
  Rng::State b = a;
  EXPECT_EQ(a, b);
  b.s[2] ^= 1ULL << 17;
  EXPECT_NE(a, b);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_EQ(acc.count(), 4u);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a;
  Accumulator b;
  Accumulator all;
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Summary, MeanCiShrinksWithSamples) {
  Rng rng(13);
  std::vector<double> few;
  std::vector<double> many;
  for (int i = 0; i < 10; ++i) few.push_back(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) many.push_back(rng.normal(0, 1));
  EXPECT_GT(mean_ci(few).ci95, mean_ci(many).ci95);
}

TEST(Summary, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Summary, PercentileClampsOutOfRangeP) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 3.0);
}

TEST(Summary, EmpiricalCdfMonotone) {
  std::vector<double> xs{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 4u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Summary, BoxStatsQuartiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const auto box = box_stats(xs);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q25, 26.0);
  EXPECT_DOUBLE_EQ(box.q75, 76.0);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 101.0);
}

TEST(Summary, ViolinDensityPeaksNearMode) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(50.0, 5.0));
  const auto violin = violin_summary(xs, 21);
  ASSERT_EQ(violin.grid.size(), 21u);
  // Peak density should be near the distribution center.
  std::size_t peak = 0;
  for (std::size_t i = 0; i < violin.density.size(); ++i) {
    if (violin.density[i] > violin.density[peak]) peak = i;
  }
  EXPECT_NEAR(violin.grid[peak], 50.0, 5.0);
  EXPECT_DOUBLE_EQ(*std::max_element(violin.density.begin(), violin.density.end()), 1.0);
}

TEST(Summary, ViolinEmptyInputSafe) {
  const auto violin = violin_summary({}, 10);
  EXPECT_TRUE(violin.grid.empty());
}

TEST(Summary, AsciiBarWidthAndFill) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
  EXPECT_EQ(ascii_bar(2.0, 4), "####");  // clamped
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 5.0, 5);
  for (int i = 0; i < 5; ++i) h.add(static_cast<double>(i) + 0.5);
  const std::string out = h.render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

}  // namespace
}  // namespace mvqoe::stats
