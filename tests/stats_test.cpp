#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"

namespace mvqoe::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DeriveSeedProducesDistinctStreams) {
  const auto s1 = derive_seed(7, 0);
  const auto s2 = derive_seed(7, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, derive_seed(7, 0));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(6);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(7);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 4.0, 0.15);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(8);
  Accumulator small;
  Accumulator large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(2.5)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 2.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, SaveRestoreRoundTripsExactly) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) rng.next();
  const Rng::State saved = rng.save_state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 1000; ++i) expected.push_back(rng.next());

  Rng restored(1);  // different seed: restore must fully overwrite
  restored.restore_state(saved);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(restored.next(), expected[i]);
}

TEST(Rng, SaveRestoreCapturesSpareNormal) {
  // The Marsaglia polar method caches a second normal; a checkpoint taken
  // between the pair must replay the cached value, not redraw it.
  Rng rng(123);
  (void)rng.normal();  // leaves a spare cached
  const Rng::State saved = rng.save_state();
  const double expected_next_normal = rng.normal();

  Rng restored(456);
  restored.restore_state(saved);
  EXPECT_EQ(restored.normal(), expected_next_normal);
  // And the streams stay locked after the spare is consumed.
  Rng replay(123);
  (void)replay.normal();
  replay.restore_state(saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replay.next(), restored.next());
}

TEST(Rng, StateEqualityDetectsPerturbation) {
  Rng rng(9);
  Rng::State a = rng.save_state();
  Rng::State b = a;
  EXPECT_EQ(a, b);
  b.s[2] ^= 1ULL << 17;
  EXPECT_NE(a, b);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_EQ(acc.count(), 4u);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a;
  Accumulator b;
  Accumulator all;
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Summary, MeanCiShrinksWithSamples) {
  Rng rng(13);
  std::vector<double> few;
  std::vector<double> many;
  for (int i = 0; i < 10; ++i) few.push_back(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) many.push_back(rng.normal(0, 1));
  EXPECT_GT(mean_ci(few).ci95, mean_ci(many).ci95);
}

TEST(Summary, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Summary, PercentileClampsOutOfRangeP) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 3.0);
}

TEST(Summary, EmpiricalCdfMonotone) {
  std::vector<double> xs{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 4u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Summary, BoxStatsQuartiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const auto box = box_stats(xs);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q25, 26.0);
  EXPECT_DOUBLE_EQ(box.q75, 76.0);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 101.0);
}

TEST(Summary, ViolinDensityPeaksNearMode) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(50.0, 5.0));
  const auto violin = violin_summary(xs, 21);
  ASSERT_EQ(violin.grid.size(), 21u);
  // Peak density should be near the distribution center.
  std::size_t peak = 0;
  for (std::size_t i = 0; i < violin.density.size(); ++i) {
    if (violin.density[i] > violin.density[peak]) peak = i;
  }
  EXPECT_NEAR(violin.grid[peak], 50.0, 5.0);
  EXPECT_DOUBLE_EQ(*std::max_element(violin.density.begin(), violin.density.end()), 1.0);
}

TEST(Summary, ViolinEmptyInputSafe) {
  const auto violin = violin_summary({}, 10);
  EXPECT_TRUE(violin.grid.empty());
}

TEST(Summary, AsciiBarWidthAndFill) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
  EXPECT_EQ(ascii_bar(2.0, 4), "####");  // clamped
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 5.0, 5);
  for (int i = 0; i < 5; ++i) h.add(static_cast<double>(i) + 0.5);
  const std::string out = h.render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Histogram, MergeMatchesBulkAdd) {
  Rng rng(41);
  Histogram bulk(0.0, 100.0, 20);
  Histogram left(0.0, 100.0, 20);
  Histogram right(0.0, 100.0, 20);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 110.0);  // exercises clamping too
    bulk.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  ASSERT_EQ(left.total(), bulk.total());
  for (std::size_t b = 0; b < bulk.bin_count(); ++b) EXPECT_EQ(left.count(b), bulk.count(b));
}

TEST(Histogram, MergeRejectsIncompatibleGrids) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_THROW(h.merge(Histogram(0.0, 10.0, 6)), std::invalid_argument);
  EXPECT_THROW(h.merge(Histogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(h.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(h.merge(Histogram(0.0, 10.0, 5, Overflow::Track)), std::invalid_argument);
  h.merge(Histogram(0.0, 10.0, 5));  // compatible grid is fine
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, TrackPolicyCountsOverflowSeparately) {
  Histogram h(0.0, 10.0, 5, Overflow::Track);
  h.add(-1.0);
  h.add(0.5);
  h.add(10.0);  // hi is exclusive: lands in above()
  h.add(25.0);
  EXPECT_EQ(h.below(), 1u);
  EXPECT_EQ(h.above(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 0u);  // edge bin no longer absorbs overflow
  EXPECT_EQ(h.total(), 4u);   // but totals still include it
  const std::string out = h.render(10);
  EXPECT_NE(out.find("below"), std::string::npos);
  EXPECT_NE(out.find("above"), std::string::npos);
}

TEST(Histogram, TrackOverflowSurvivesMergeAndAddOverflow) {
  Histogram a(0.0, 1.0, 2, Overflow::Track);
  Histogram b(0.0, 1.0, 2, Overflow::Track);
  a.add(-5.0);
  b.add(2.0);
  b.add_overflow(3, 4);
  a.merge(b);
  EXPECT_EQ(a.below(), 4u);
  EXPECT_EQ(a.above(), 5u);
  EXPECT_EQ(a.total(), 9u);
}

TEST(Histogram, ClampPolicyRenderHasNoOverflowRows) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(25.0);
  EXPECT_EQ(h.below(), 0u);
  EXPECT_EQ(h.above(), 0u);
  const std::string out = h.render(10);
  EXPECT_EQ(out.find("below"), std::string::npos);
  EXPECT_EQ(out.find("above"), std::string::npos);
}

namespace {

bool same_sketch_state(const QuantileSketch::State& a, const QuantileSketch::State& b) {
  return a.k == b.k && a.n == b.n && a.min == b.min && a.max == b.max &&
         a.parity == b.parity && a.levels == b.levels;
}

}  // namespace

TEST(QuantileSketch, PureFunctionOfInputSequence) {
  QuantileSketch a(64);
  QuantileSketch b(64);
  Rng rng(97);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  for (double x : xs) a.add(x);
  for (double x : xs) b.add(x);
  EXPECT_TRUE(same_sketch_state(a.save_state(), b.save_state()));
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(QuantileSketch, QuantilesApproximateAndExtremesExact) {
  QuantileSketch s;
  for (int i = 0; i < 10000; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 9999.0);
  EXPECT_NEAR(s.quantile(0.5), 5000.0, 500.0);
  EXPECT_NEAR(s.quantile(0.9), 9000.0, 500.0);
  EXPECT_LE(s.quantile(0.1), s.quantile(0.9));  // monotone
}

TEST(QuantileSketch, MergeIsDeterministicInFixedOrder) {
  Rng rng(7);
  QuantileSketch a(64);
  QuantileSketch b(64);
  for (int i = 0; i < 3000; ++i) a.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 3000; ++i) b.add(rng.normal(5.0, 2.0));
  QuantileSketch m1(64);
  m1.merge(a);
  m1.merge(b);
  QuantileSketch m2(64);
  m2.merge(a);
  m2.merge(b);
  EXPECT_EQ(m1.count(), 6000u);
  EXPECT_TRUE(same_sketch_state(m1.save_state(), m2.save_state()));
  EXPECT_DOUBLE_EQ(m1.min(), std::min(a.min(), b.min()));
  EXPECT_DOUBLE_EQ(m1.max(), std::max(a.max(), b.max()));
}

TEST(QuantileSketch, MergeRejectsMismatchedWidth) {
  QuantileSketch a(64);
  QuantileSketch b(128);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, SaveRestoreRoundTripsExactly) {
  QuantileSketch s(32);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) s.add(rng.exponential(1.0));
  QuantileSketch restored(8);  // deliberately different shape pre-restore
  restored.restore_state(s.save_state());
  EXPECT_TRUE(same_sketch_state(s.save_state(), restored.save_state()));
  // The restored sketch continues identically, not just statically.
  s.add(42.0);
  restored.add(42.0);
  EXPECT_TRUE(same_sketch_state(s.save_state(), restored.save_state()));
}

TEST(Accumulator, StateRoundTripBitExact) {
  Accumulator acc;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) acc.add(rng.normal(3.0, 2.0));
  Accumulator restored;
  restored.restore_state(acc.save_state());
  Accumulator tail;
  for (int i = 0; i < 100; ++i) tail.add(rng.uniform(0.0, 1.0));
  acc.merge(tail);
  restored.merge(tail);
  EXPECT_EQ(acc.count(), restored.count());
  EXPECT_DOUBLE_EQ(acc.mean(), restored.mean());
  EXPECT_DOUBLE_EQ(acc.stddev(), restored.stddev());
}

}  // namespace
}  // namespace mvqoe::stats
