// Tests for the src/check fuzz stack (DESIGN.md §12): per-oracle
// corruption tests (a hand-corrupted observation trips exactly the
// intended oracle and no other), shrinker convergence on a known-failing
// spec, the differential sweep of every bench scenario family under the
// full oracle suite, campaign digest determinism across reruns and
// --jobs, and repro blob round-trip / replay / localization.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "check/harness.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"
#include "scenario/spec.hpp"

namespace mvqoe {
namespace {

using check::Violation;
using check::WorldObservation;
using Audit = mem::MemoryManager::KillAudit;

// ---------- Corruption tests: one corrupted field, exactly one oracle --------

/// A healthy observation consistent with the default MemoryConfig — the
/// starting point every corruption test mutates one aspect of.
WorldObservation clean_observation() {
  WorldObservation obs;
  obs.at = sim::sec(1);
  obs.offset = sim::sec(1);
  const mem::MemoryConfig config;
  obs.mem.total = config.total;
  obs.mem.kernel_reserved = config.kernel_reserved;
  obs.mem.free = mem::pages_from_mb(100);
  obs.mem.file = mem::pages_from_mb(60);
  obs.mem.available = obs.mem.free + obs.mem.file;
  obs.mem.anon = mem::pages_from_mb(300);
  obs.mem.zram_stored = mem::pages_from_mb(50);
  obs.mem.zram_capacity = config.zram_capacity;
  obs.mem.wm_min = config.watermark_min;
  obs.mem.wm_low = config.watermark_low;
  obs.mem.wm_high = config.watermark_high;
  obs.mem.kswapd_active = false;
  obs.mem.kswapd_wakeups = 5;
  obs.mem.pressure = 10.0;
  // A default-constructed charter mirrors the default MemoryConfig
  // (mem_policy_test pins that equivalence) — this IS baseline's rules.
  obs.mem.charter = mem::KillCharter{};
  return obs;
}

/// A kill audit that satisfies every LmkdOrderOracle rule under the
/// clean observation's band configuration.
Audit clean_lmkd_audit() {
  Audit kill;
  kill.at = sim::sec(1);
  kill.pid = 42;
  kill.reason = Audit::Reason::Lmkd;
  kill.oom_adj = mem::OomAdj::kCached;
  kill.min_adj = mem::OomAdj::kService;
  kill.max_killable_adj = mem::OomAdj::kCached;
  kill.pressure = 70.0;  // in (60, 95) -> background band
  kill.available = mem::pages_from_mb(100);
  kill.zram_stored = 0;
  return kill;
}

/// The corrupted observation must trip `oracle` and nothing else.
void expect_only(check::OracleSuite& suite, const WorldObservation& obs,
                 const std::string& oracle) {
  const std::vector<Violation> trips = suite.check_all(obs);
  ASSERT_EQ(trips.size(), 1u) << "expected exactly one violation for " << oracle
                              << (trips.empty() ? "" : "; first: " + trips.front().oracle + ": " +
                                                           trips.front().detail);
  EXPECT_EQ(trips.front().oracle, oracle) << trips.front().detail;
  EXPECT_EQ(trips.front().at, obs.at);
}

TEST(OracleCorruption, CleanObservationTripsNothing) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.new_kills.push_back(clean_lmkd_audit());
  EXPECT_TRUE(suite.check_all(obs).empty());
}

TEST(OracleCorruption, BrokenConservationTripsOnlyMemConservation) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.mem.conservation_ok = false;
  obs.mem.conservation_detail = "free pool out of balance by 3 pages";
  expect_only(suite, obs, "mem-conservation");
}

TEST(OracleCorruption, InvertedWatermarksTripOnlyWatermarks) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.mem.wm_low = obs.mem.wm_min - 1;
  expect_only(suite, obs, "watermarks");
}

TEST(OracleCorruption, ZramOverCapacityTripsOnlyWatermarks) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.mem.zram_stored = obs.mem.zram_capacity + 1;
  expect_only(suite, obs, "watermarks");
}

TEST(OracleCorruption, KswapdSleepingBelowMinTripsOnlyKswapd) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.mem.free = obs.mem.wm_min - 1;
  obs.mem.available = obs.mem.free + obs.mem.file;
  obs.mem.kswapd_active = false;
  expect_only(suite, obs, "kswapd");
}

TEST(OracleCorruption, KswapdWakeupCounterBackwardsTripsOnlyKswapd) {
  check::OracleSuite suite;
  WorldObservation first = clean_observation();
  ASSERT_TRUE(suite.check_all(first).empty());
  WorldObservation second = clean_observation();
  second.at = sim::sec(2);
  second.mem.kswapd_wakeups = first.mem.kswapd_wakeups - 2;
  expect_only(suite, second, "kswapd");
}

TEST(OracleCorruption, KswapdActiveWithoutWakeupTripsOnlyKswapd) {
  check::OracleSuite suite;
  WorldObservation first = clean_observation();
  ASSERT_TRUE(suite.check_all(first).empty());
  WorldObservation second = clean_observation();
  second.at = sim::sec(2);
  second.mem.kswapd_active = true;  // wakeup counter unchanged
  expect_only(suite, second, "kswapd");
}

TEST(OracleCorruption, VictimNotHighestKillableTripsOnlyLmkdOrder) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  Audit kill = clean_lmkd_audit();
  kill.oom_adj = mem::OomAdj::kService;  // a cached victim existed
  kill.min_adj = mem::OomAdj::kService;
  obs.new_kills.push_back(kill);
  expect_only(suite, obs, "lmkd-order");
}

TEST(OracleCorruption, KillOutsidePressureBandTripsOnlyLmkdOrder) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  Audit kill = clean_lmkd_audit();
  kill.pressure = 30.0;  // below the kill threshold: lmkd must not fire
  obs.new_kills.push_back(kill);
  expect_only(suite, obs, "lmkd-order");
}

TEST(OracleCorruption, TwoLmkdKillsSameInstantTripOnlyLmkdOrder) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.new_kills.push_back(clean_lmkd_audit());
  obs.new_kills.push_back(clean_lmkd_audit());  // cooldown forbids this
  expect_only(suite, obs, "lmkd-order");
}

TEST(OracleCorruption, OomEscalationWithBackgroundAliveTripsOnlyLmkdOrder) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  Audit kill = clean_lmkd_audit();
  kill.reason = Audit::Reason::Oom;
  kill.min_adj = mem::OomAdj::kForeground;  // escalated...
  kill.oom_adj = mem::OomAdj::kCached;      // ...past a cached victim
  kill.max_killable_adj = mem::OomAdj::kCached;
  obs.new_kills.push_back(kill);
  expect_only(suite, obs, "lmkd-order");
}

// ---------- Per-policy corruption tests: the oracle follows the charter ------
//
// The same kill audit must be judged by whatever charter the world
// publishes: legal under the policy that made the decision, a violation
// under baseline's rules. One test per way a registered policy departs
// from baseline Android.

TEST(OraclePolicyCharter, FloorOnlyVictimLegalUnderSwamTripsBaseline) {
  const mem::MemoryConfig config;
  Audit kill = clean_lmkd_audit();
  // swam scored a service victim while a cached one was alive — fine
  // under FloorOnly, a victim-selection violation under HighestAdj.
  kill.oom_adj = mem::OomAdj::kService;
  kill.min_adj = mem::OomAdj::kService;
  kill.max_killable_adj = mem::OomAdj::kCached;

  check::OracleSuite swam_suite;
  WorldObservation swam_obs = clean_observation();
  swam_obs.mem.charter = mem::kill_charter_for({"swam", {}}, config);
  swam_obs.new_kills.push_back(kill);
  EXPECT_TRUE(swam_suite.check_all(swam_obs).empty());

  check::OracleSuite baseline_suite;
  WorldObservation baseline_obs = clean_observation();
  baseline_obs.new_kills.push_back(kill);
  expect_only(baseline_suite, baseline_obs, "lmkd-order");
}

TEST(OraclePolicyCharter, SwapFullKillLegalUnderSwamTripsBaseline) {
  const mem::MemoryConfig config;
  Audit kill = clean_lmkd_audit();
  // Joint swap/kill decision: zRAM past the 0.85 fill fraction demands a
  // background kill at quiet pressure. Baseline has no such band.
  kill.pressure = 30.0;
  kill.zram_stored = static_cast<mem::Pages>(0.9 * static_cast<double>(config.zram_capacity));
  kill.min_adj = mem::OomAdj::kService;

  check::OracleSuite swam_suite;
  WorldObservation swam_obs = clean_observation();
  swam_obs.mem.charter = mem::kill_charter_for({"swam", {}}, config);
  swam_obs.new_kills.push_back(kill);
  EXPECT_TRUE(swam_suite.check_all(swam_obs).empty());

  check::OracleSuite baseline_suite;
  WorldObservation baseline_obs = clean_observation();
  baseline_obs.new_kills.push_back(kill);
  expect_only(baseline_suite, baseline_obs, "lmkd-order");
}

TEST(OraclePolicyCharter, SwamCooldownIsStricterThanBaseline) {
  const mem::MemoryConfig config;
  // Two kills 200 ms apart: legal under baseline's 150 ms cooldown,
  // forbidden under swam's 250 ms.
  Audit first = clean_lmkd_audit();
  Audit second = clean_lmkd_audit();
  second.at = first.at + sim::msec(200);

  check::OracleSuite baseline_suite;
  WorldObservation baseline_obs = clean_observation();
  baseline_obs.new_kills.push_back(first);
  baseline_obs.new_kills.push_back(second);
  EXPECT_TRUE(baseline_suite.check_all(baseline_obs).empty());

  check::OracleSuite swam_suite;
  WorldObservation swam_obs = clean_observation();
  swam_obs.mem.charter = mem::kill_charter_for({"swam", {}}, config);
  swam_obs.new_kills.push_back(first);
  swam_obs.new_kills.push_back(second);
  expect_only(swam_suite, swam_obs, "lmkd-order");
}

TEST(OraclePolicyCharter, ReservedLadderKillLegalUnderPartitionedTripsBaseline) {
  const mem::MemoryConfig config;
  Audit kill = clean_lmkd_audit();
  // Available memory above Android's cached minfree level, but inside it
  // once the 19 MB foreground reserve is spoken for: partitioned kills a
  // cached app here, baseline must not kill at all.
  kill.pressure = 30.0;
  kill.available = mem::pages_from_mb(50);
  kill.min_adj = mem::OomAdj::kCached;

  check::OracleSuite partitioned_suite;
  WorldObservation partitioned_obs = clean_observation();
  partitioned_obs.mem.charter = mem::kill_charter_for({"partitioned", {}}, config);
  partitioned_obs.new_kills.push_back(kill);
  EXPECT_TRUE(partitioned_suite.check_all(partitioned_obs).empty());

  check::OracleSuite baseline_suite;
  WorldObservation baseline_obs = clean_observation();
  baseline_obs.new_kills.push_back(kill);
  expect_only(baseline_suite, baseline_obs, "lmkd-order");
}

trace::StateInterval make_interval(trace::ThreadId tid, sim::Time begin, sim::Time end,
                                   trace::ThreadState state,
                                   trace::ThreadId preemptor = trace::kNoThread) {
  trace::StateInterval iv;
  iv.tid = tid;
  iv.begin = begin;
  iv.end = end;
  iv.state = state;
  iv.preemptor = preemptor;
  return iv;
}

TEST(OracleCorruption, ZeroLengthIntervalTripsOnlySchedState) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  // The tracer suppresses zero-length intervals; one in the log means
  // the suppression (or a synthetic producer) is broken.
  obs.new_intervals.push_back(make_interval(7, sim::msec(5), sim::msec(5),
                                            trace::ThreadState::Runnable));
  expect_only(suite, obs, "sched-state");
}

TEST(OracleCorruption, CreatedAfterHistoryTripsOnlySchedState) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.new_intervals.push_back(make_interval(7, 0, sim::msec(5), trace::ThreadState::Sleeping));
  obs.new_intervals.push_back(
      make_interval(7, sim::msec(5), sim::msec(8), trace::ThreadState::Created));
  expect_only(suite, obs, "sched-state");
}

TEST(OracleCorruption, IntervalGapTripsOnlySchedState) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.new_intervals.push_back(make_interval(7, 0, sim::msec(5), trace::ThreadState::Sleeping));
  // Gap: the previous interval ended at 5 ms.
  obs.new_intervals.push_back(
      make_interval(7, sim::msec(7), sim::msec(9), trace::ThreadState::Runnable));
  expect_only(suite, obs, "sched-state");
}

TEST(OracleCorruption, PreemptedWithoutPreemptorTripsOnlySchedState) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.new_intervals.push_back(
      make_interval(7, 0, sim::msec(5), trace::ThreadState::RunnablePreempted));
  expect_only(suite, obs, "sched-state");
}

TEST(OracleCorruption, VruntimeBackwardsTripsOnlyVruntime) {
  check::OracleSuite suite;
  WorldObservation first = clean_observation();
  first.threads.push_back({3, trace::ThreadState::Sleeping, 10.0});
  ASSERT_TRUE(suite.check_all(first).empty());
  WorldObservation second = clean_observation();
  second.at = sim::sec(2);
  second.threads.push_back({3, trace::ThreadState::Sleeping, 5.0});
  expect_only(suite, second, "vruntime");
}

TEST(OracleCorruption, FrameSumOverTotalTripsOnlyVideoFrames) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  check::VideoObs video;
  video.label = "v";
  video.presented = 10;
  video.frame_total = 5;
  obs.videos.push_back(video);
  expect_only(suite, obs, "video-frames");
}

TEST(OracleCorruption, FrameCountersBackwardsTripOnlyVideoFrames) {
  check::OracleSuite suite;
  WorldObservation first = clean_observation();
  check::VideoObs video;
  video.label = "v";
  video.presented = 10;
  first.videos.push_back(video);
  ASSERT_TRUE(suite.check_all(first).empty());
  WorldObservation second = clean_observation();
  second.at = sim::sec(2);
  video.presented = 5;
  second.videos.push_back(video);
  expect_only(suite, second, "video-frames");
}

TEST(OracleCorruption, FinalFrameDeficitTripsOnlyVideoFrames) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.final_obs = true;
  check::VideoObs video;
  video.label = "v";
  video.presented = 50;
  video.dropped = 10;
  video.frame_total = 100;  // 40 frames unaccounted for
  video.finished = true;
  obs.videos.push_back(video);
  expect_only(suite, obs, "video-frames");
}

TEST(OracleCorruption, LivelockTripwireTripsOnlyEngine) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  obs.engine.livelock_trips = 1;
  expect_only(suite, obs, "engine");
}

// ---------- Net oracle corruption (cc-mode link invariants) ------------------

/// A healthy cc-mode network observation: one half-done flow, bytes
/// conserved, backlog inside the droptail bound, sane controller state.
void add_clean_net(WorldObservation& obs) {
  obs.net.cc_mode = true;
  obs.net.cc = "cubic";
  obs.net.retired_delivered = 1'000'000;
  obs.net.bytes_delivered = 1'500'000;
  obs.net.backlog_bytes = 30'000;
  obs.net.queue_capacity_bytes = 64 * 1024;
  check::NetFlowObs flow;
  flow.id = 7;
  flow.total_bytes = 2'000'000;
  flow.delivered_bytes = 500'000;
  flow.inflight_bytes = 30'000;
  flow.cwnd_bytes = 45'000.0;
  flow.pacing_bytes_per_usec = 10.0;
  obs.net.flows.push_back(flow);
}

TEST(OracleCorruption, CleanNetObservationTripsNothing) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  EXPECT_TRUE(suite.check_all(obs).empty());
}

TEST(OracleCorruption, LostNetBytesTripOnlyNetConservation) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.retired_delivered -= 1;  // a byte vanished between flows and the link
  expect_only(suite, obs, "net-conservation");
}

TEST(OracleCorruption, BacklogOverCapacityTripsOnlyNetQueue) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.backlog_bytes = obs.net.queue_capacity_bytes + 1;  // droptail must have dropped
  expect_only(suite, obs, "net-queue");
}

TEST(OracleCorruption, CwndBelowOnePacketTripsOnlyNetCwnd) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.flows.front().cwnd_bytes = 0.0;  // the controller clamp failed
  expect_only(suite, obs, "net-cwnd");
}

TEST(OracleCorruption, NegativePacingRateTripsOnlyNetCwnd) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.flows.front().pacing_bytes_per_usec = -1.0;
  expect_only(suite, obs, "net-cwnd");
}

TEST(OracleCorruption, DeliveredOverTotalTripsOnlyNetProgress) {
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.flows.front().delivered_bytes = obs.net.flows.front().total_bytes + 1;
  // Keep conservation intact so only the progress oracle can trip.
  obs.net.bytes_delivered = obs.net.retired_delivered + obs.net.flows.front().delivered_bytes;
  expect_only(suite, obs, "net-progress");
}

TEST(OracleCorruption, DeliveredBackwardsTripsOnlyNetProgress) {
  check::OracleSuite suite;
  WorldObservation first = clean_observation();
  add_clean_net(first);
  ASSERT_TRUE(suite.check_all(first).empty());
  WorldObservation second = clean_observation();
  add_clean_net(second);
  second.net.flows.front().delivered_bytes -= 1;  // un-delivered a byte
  second.net.bytes_delivered = second.net.retired_delivered +
                               second.net.flows.front().delivered_bytes;
  expect_only(suite, second, "net-progress");
}

TEST(OracleCorruption, FifoModeNetOraclesAreInert) {
  // The same corrupted numbers with cc_mode unset must trip nothing: the
  // serial fifo link has no flows for the net oracles to reason about.
  check::OracleSuite suite;
  WorldObservation obs = clean_observation();
  add_clean_net(obs);
  obs.net.cc_mode = false;
  obs.net.retired_delivered -= 1;
  obs.net.backlog_bytes = obs.net.queue_capacity_bytes + 1;
  obs.net.flows.front().cwnd_bytes = -5.0;
  EXPECT_TRUE(suite.check_all(obs).empty());
}

TEST(OracleSuiteShape, CanonicalNamesInOrder) {
  const std::vector<std::string> expected = {
      "engine",      "mem-conservation", "watermarks", "kswapd",
      "lmkd-order",  "sched-state",      "vruntime",   "video-frames",
      "net-conservation", "net-queue",   "net-cwnd",   "net-progress"};
  EXPECT_EQ(check::oracle_names(), expected);
}

// ---------- Differential: every bench scenario family runs clean -------------

class FamilyDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyDifferential, ShortHorizonCleanUnderFullSuite) {
  const scenario::ScenarioSpec scen =
      scenario::single_video(GetParam(), 360, 30, 4, mem::PressureLevel::Normal, 7);
  const check::RunReport report = check::check_scenario(scen);
  ASSERT_TRUE(report.ok) << report.violation->oracle << ": " << report.violation->detail;
  EXPECT_GT(report.slices, 0);
  EXPECT_NE(report.final_digest, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyDifferential,
                         ::testing::ValuesIn(scenario::scenario_families()));

// ---------- Harness: perturbation, shrinking, repro, localization ------------

/// The known-failing spec: a perturbed multi-workload fig16 world. The
/// RNG bit flip at +2 s makes the primary run diverge from the clean
/// rerun, tripping the meta-determinism oracle.
scenario::ScenarioSpec failing_spec() {
  scenario::ScenarioSpec scen;
  scen.family = "fig16";
  scen.state = mem::PressureLevel::Moderate;
  scen.seed = 42;
  scenario::VideoWorkloadSpec a;
  a.label = "video0";
  a.height = 360;
  a.fps = 30;
  a.duration_s = 4;
  a.seed = 101;
  scenario::VideoWorkloadSpec b = a;
  b.label = "video1";
  b.seed = 202;
  scen.workloads.push_back(a);
  scen.workloads.push_back(b);
  scen.workloads.push_back(scenario::BackgroundAppsWorkloadSpec{"background", 4});
  scen.workloads.push_back(scenario::PressureWorkloadSpec{"pressure", mem::PressureLevel::Moderate});
  return scen;
}

check::CheckOptions perturbed_options() {
  check::CheckOptions opts;
  opts.perturb_at = sim::sec(2);
  return opts;
}

TEST(Harness, PerturbationTripsMetaDeterminism) {
  const check::RunReport report = check::check_scenario(failing_spec(), perturbed_options());
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.violation->oracle, "meta-determinism") << report.violation->detail;
}

TEST(Harness, UnperturbedSpecRunsClean) {
  const check::RunReport report = check::check_scenario(failing_spec());
  ASSERT_TRUE(report.ok) << report.violation->oracle << ": " << report.violation->detail;
}

TEST(Shrinker, ConvergesToMinimalSpecWithSameOracle) {
  const scenario::ScenarioSpec spec = failing_spec();
  const check::RunReport original = check::check_scenario(spec, perturbed_options());
  ASSERT_FALSE(original.ok);

  check::ShrinkOptions opts;
  opts.check = perturbed_options();
  opts.perturb_at = sim::sec(2);
  const check::ShrinkResult shrunk = check::shrink(spec, *original.violation, opts);

  EXPECT_GE(shrunk.accepted, 1);
  EXPECT_LT(shrunk.minimal.workloads.size(), spec.workloads.size());
  EXPECT_GE(shrunk.minimal.workloads.size(), 1u);
  EXPECT_EQ(shrunk.violation.oracle, "meta-determinism");

  // The minimal spec reproduces the same failure on a fresh run.
  const check::RunReport replay = check::check_scenario(shrunk.minimal, perturbed_options());
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.violation->oracle, "meta-determinism");
}

TEST(Localization, NamesFirstDivergingEventOfPerturbedRun) {
  const scenario::ScenarioSpec spec = failing_spec();
  const check::RunReport report = check::check_scenario(spec, perturbed_options());
  ASSERT_FALSE(report.ok);
  const check::Localization loc =
      check::localize_violation(spec, *report.violation, sim::sec(2));
  ASSERT_TRUE(loc.located) << loc.detail;
  EXPECT_FALSE(loc.subsystem.empty());
  EXPECT_GT(loc.probes, 0);
  // The bit flip lands at +2 s; the first diverging event cannot precede it.
  EXPECT_GE(loc.event_time, sim::sec(2));
}

TEST(Repro, BlobRoundTripsAndReplays) {
  check::Repro repro;
  repro.spec = failing_spec();
  repro.run_seed = 42;
  repro.oracle = "meta-determinism";
  repro.detail = "digest trail diverged";
  repro.offset = sim::sec(2);
  repro.perturb_at = sim::sec(2);

  const snapshot::Snapshot blob = check::save_repro(repro);
  const snapshot::Snapshot reparsed = snapshot::Snapshot::parse(blob.serialize());
  const check::Repro loaded = check::load_repro(reparsed);
  EXPECT_EQ(loaded.run_seed, repro.run_seed);
  EXPECT_EQ(loaded.oracle, repro.oracle);
  EXPECT_EQ(loaded.detail, repro.detail);
  EXPECT_EQ(loaded.offset, repro.offset);
  ASSERT_TRUE(loaded.perturb_at.has_value());
  EXPECT_EQ(*loaded.perturb_at, sim::sec(2));
  EXPECT_EQ(loaded.spec.family, repro.spec.family);
  EXPECT_EQ(loaded.spec.workloads.size(), repro.spec.workloads.size());

  const check::ReproReport replay = check::replay_repro(loaded);
  EXPECT_TRUE(replay.reproduced)
      << (replay.violation ? replay.violation->oracle + ": " + replay.violation->detail
                           : std::string("ran clean"));
}

TEST(Repro, CommittedMinimizedBlobStillReproduces) {
  const snapshot::Snapshot blob =
      snapshot::Snapshot::read_file(MVQOE_TEST_DATA_DIR "/repros/meta-perturb.mvqs");
  const check::Repro repro = check::load_repro(blob);
  EXPECT_EQ(repro.oracle, "meta-determinism");
  const check::ReproReport replay = check::replay_repro(repro);
  EXPECT_TRUE(replay.reproduced)
      << (replay.violation ? replay.violation->oracle + ": " + replay.violation->detail
                           : std::string("ran clean"));
}

// ---------- Campaign: digest determinism and the seeded failure demo ---------

check::FuzzOptions small_campaign(int jobs) {
  check::FuzzOptions opts;
  opts.seed = 3;
  opts.runs = 6;
  opts.jobs = jobs;
  return opts;
}

TEST(Fuzz, SummaryDigestIdenticalAcrossReruns) {
  const check::FuzzSummary a = check::run_fuzz(small_campaign(1));
  const check::FuzzSummary b = check::run_fuzz(small_campaign(1));
  EXPECT_EQ(a.runs, 6);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Fuzz, SummaryDigestInvariantToJobs) {
  const check::FuzzSummary serial = check::run_fuzz(small_campaign(1));
  const check::FuzzSummary parallel = check::run_fuzz(small_campaign(4));
  EXPECT_EQ(serial.failed, parallel.failed);
  EXPECT_EQ(serial.digest, parallel.digest);
}

TEST(Fuzz, SeededPerturbationIsCaughtAndAttributed) {
  check::FuzzOptions opts = small_campaign(1);
  opts.runs = 4;
  opts.perturb_run = 2;
  opts.perturb_offset = sim::sec(2);
  const check::FuzzSummary summary = check::run_fuzz(opts);
  ASSERT_EQ(summary.failed, 1);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures.front().run, 2);
  EXPECT_EQ(summary.failures.front().violation.oracle, "meta-determinism");
}

}  // namespace
}  // namespace mvqoe
