// FaultInjector + InvariantWatchdog unit tests: scripted windows apply
// and restore, kills route through the resolver, the Gilbert-Elliott
// model replays byte-identically per seed, and the watchdog catches the
// invariant classes it exists for.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "scenario/spec.hpp"
#include "snapshot/replay/driver.hpp"

namespace mvqoe::fault {
namespace {

using sim::msec;
using sim::sec;

TEST(FaultInjector, ScriptedOutageTakesLinkDownAndRestores) {
  sim::Engine engine;
  net::Link link(engine, net::LinkConfig{});
  FaultPlan plan;
  plan.link_outages.push_back({sec(1), sec(2)});
  FaultTargets targets;
  targets.engine = &engine;
  targets.link = &link;
  FaultInjector injector(targets, plan);
  injector.arm(0);

  engine.run_until(msec(1500));
  EXPECT_TRUE(link.down());
  EXPECT_EQ(injector.open_outages(), 1);
  engine.run();
  EXPECT_FALSE(link.down());
  EXPECT_EQ(injector.open_outages(), 0);

  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_EQ(injector.log()[0].kind, trace::InstantKind::LinkDown);
  EXPECT_EQ(injector.log()[0].at, sec(1));
  EXPECT_EQ(injector.log()[1].kind, trace::InstantKind::LinkUp);
  EXPECT_EQ(injector.log()[1].at, sec(3));
}

TEST(FaultInjector, PlanTimesAreRelativeToArmBase) {
  sim::Engine engine;
  net::Link link(engine, net::LinkConfig{});
  FaultPlan plan;
  plan.link_rate_steps.push_back({sec(2), 8.0});
  FaultTargets targets;
  targets.engine = &engine;
  targets.link = &link;
  FaultInjector injector(targets, plan);
  engine.run_until(sec(10));
  injector.arm(engine.now());  // "at 2 s" means 2 s after arming
  engine.run();
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].at, sec(12));
  EXPECT_DOUBLE_EQ(link.config().rate_mbps, 8.0);
  EXPECT_EQ(injector.log()[0].value, 8000);  // kbps
}

TEST(FaultInjector, OverlappingOutagesRestoreOnLastClose) {
  sim::Engine engine;
  net::Link link(engine, net::LinkConfig{});
  FaultPlan plan;
  plan.link_outages.push_back({sec(1), sec(4)});  // [1, 5]
  plan.link_outages.push_back({sec(2), sec(1)});  // [2, 3]
  FaultTargets targets;
  targets.engine = &engine;
  targets.link = &link;
  FaultInjector injector(targets, plan);
  injector.arm(0);
  engine.run_until(msec(2500));
  EXPECT_EQ(injector.open_outages(), 2);
  engine.run_until(msec(3500));
  EXPECT_TRUE(link.down());  // inner window closed, outer still open
  engine.run();
  EXPECT_FALSE(link.down());
  EXPECT_EQ(link.counters().outages, 1u);  // one physical down transition
}

TEST(FaultInjector, DisarmRestoresNominalConditionsMidWindow) {
  core::Testbed tb(core::nexus5(), 5);
  tb.boot();
  FaultPlan plan;
  plan.link_outages.push_back({sec(1), sec(100)});
  plan.link_rate_steps.push_back({sec(1), 5.0});
  plan.storage_degradations.push_back({sec(1), sec(100), 6.0, 0.5});
  plan.thermal_windows.push_back({sec(1), sec(100), 0.5});
  FaultTargets targets;
  targets.engine = &tb.engine;
  targets.link = &tb.link;
  targets.storage = &tb.storage;
  targets.scheduler = &tb.scheduler;
  targets.memory = &tb.memory;
  targets.tracer = &tb.tracer;
  const double nominal_rate = tb.link.config().rate_mbps;
  FaultInjector injector(targets, plan);
  injector.arm(tb.engine.now());
  tb.engine.run_until(tb.engine.now() + sec(2));

  EXPECT_TRUE(tb.link.down());
  EXPECT_DOUBLE_EQ(tb.scheduler.speed_scale(), 0.5);
  EXPECT_DOUBLE_EQ(tb.storage.latency_multiplier(), 6.0);
  EXPECT_DOUBLE_EQ(tb.storage.error_rate(), 0.5);

  injector.disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(tb.link.down());
  EXPECT_DOUBLE_EQ(tb.scheduler.speed_scale(), 1.0);
  EXPECT_DOUBLE_EQ(tb.storage.latency_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(tb.storage.error_rate(), 0.0);
  EXPECT_EQ(injector.open_outages(), 0);
  EXPECT_EQ(injector.open_storage_windows(), 0);
  EXPECT_EQ(injector.open_thermal_windows(), 0);
  // The scripted rate step applied before disarm; disarm does not undo
  // scripted (non-window) steps, and pending far-future ends are gone.
  EXPECT_DOUBLE_EQ(tb.link.config().rate_mbps, 5.0);
  (void)nominal_rate;
  tb.engine.run_until(tb.engine.now() + sec(200));  // nothing left to fire
  EXPECT_FALSE(tb.link.down());
}

TEST(FaultInjector, KillResolvesVictimThroughResolverAtFireTime) {
  core::Testbed tb(core::nexus5(), 5);
  tb.boot();
  const auto pid = tb.am.next_pid();
  bool killed = false;
  tb.memory.register_process(pid, "victim", mem::OomAdj::kForeground,
                             [&killed] { killed = true; });
  FaultPlan plan;
  plan.kills.push_back({sec(1), 0});  // pid 0 = use the resolver
  FaultTargets targets;
  targets.engine = &tb.engine;
  targets.memory = &tb.memory;
  FaultInjector injector(targets, plan);
  injector.set_kill_target([pid] { return pid; });
  injector.arm(tb.engine.now());
  tb.engine.run_until(tb.engine.now() + sec(2));

  EXPECT_TRUE(killed);
  EXPECT_EQ(injector.kills_injected(), 1u);
  EXPECT_FALSE(tb.memory.registry().alive(pid));
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].kind, trace::InstantKind::FaultKill);
  EXPECT_EQ(injector.log()[0].value, static_cast<std::int64_t>(pid));
}

TEST(FaultInjector, KillSkippedWhenResolverReturnsNoVictim) {
  core::Testbed tb(core::nexus5(), 5);
  tb.boot();
  FaultPlan plan;
  plan.kills.push_back({sec(1), 0});
  FaultTargets targets;
  targets.engine = &tb.engine;
  targets.memory = &tb.memory;
  FaultInjector injector(targets, plan);
  injector.set_kill_target([] { return mem::ProcessId{0}; });
  injector.arm(tb.engine.now());
  tb.engine.run_until(tb.engine.now() + sec(2));
  EXPECT_EQ(injector.kills_injected(), 0u);
  EXPECT_EQ(injector.skipped_actions(), 1u);
}

TEST(FaultInjector, ActionsAgainstAbsentTargetsAreSkippedNotFatal) {
  sim::Engine engine;
  FaultPlan plan;
  plan.link_outages.push_back({sec(1), sec(1)});
  plan.link_rate_steps.push_back({sec(1), 8.0});
  plan.storage_degradations.push_back({sec(1), sec(1)});
  plan.thermal_windows.push_back({sec(1), sec(1)});
  plan.kills.push_back({sec(1), 42});
  FaultTargets targets;
  targets.engine = &engine;  // nothing else wired up
  FaultInjector injector(targets, plan);
  injector.arm(0);
  engine.run();
  EXPECT_EQ(injector.kills_injected(), 0u);
  EXPECT_EQ(injector.skipped_actions(), 5u);
  EXPECT_TRUE(injector.log().empty());
}

TEST(FaultInjector, GilbertElliottReplaysByteIdenticallyPerSeed) {
  auto run_model = [](std::uint64_t seed) {
    sim::Engine engine;
    net::Link link(engine, net::LinkConfig{});
    FaultPlan plan;
    plan.seed = seed;
    plan.gilbert_elliott.enabled = true;
    plan.gilbert_elliott.mean_good = sec(5);
    plan.gilbert_elliott.mean_bad = sec(1);
    FaultTargets targets;
    targets.engine = &engine;
    targets.link = &link;
    FaultInjector injector(targets, plan);
    injector.arm(0);
    engine.run_until(sim::minutes(5));
    injector.disarm();
    return injector.log();
  };
  const auto a = run_model(17);
  const auto b = run_model(17);
  const auto c = run_model(18);
  ASSERT_GT(a.size(), 10u);  // the model actually transitioned
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  // A different seed produces a different transition sequence.
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, GilbertElliottBadPeriodsMixOutagesAndRateCollapses) {
  sim::Engine engine;
  net::Link link(engine, net::LinkConfig{});
  FaultPlan plan;
  plan.seed = 23;
  plan.gilbert_elliott.enabled = true;
  plan.gilbert_elliott.mean_good = sec(3);
  plan.gilbert_elliott.mean_bad = sec(1);
  plan.gilbert_elliott.bad_outage_probability = 0.5;
  FaultTargets targets;
  targets.engine = &engine;
  targets.link = &link;
  FaultInjector injector(targets, plan);
  injector.arm(0);
  engine.run_until(sim::minutes(10));
  injector.disarm();
  int outages = 0;
  int rate_drops = 0;
  for (const auto& rec : injector.log()) {
    if (rec.kind == trace::InstantKind::LinkDown) ++outages;
    if (rec.kind == trace::InstantKind::LinkRateChange && rec.value < 80'000) ++rate_drops;
  }
  EXPECT_GT(outages, 0);
  EXPECT_GT(rate_drops, 0);
  // Whatever the final state, disarm restored the link.
  EXPECT_FALSE(link.down());
  EXPECT_DOUBLE_EQ(link.config().rate_mbps, 80.0);
}

// Checkpoint-under-fault: a snapshot taken mid-outage must restore the
// remaining fault schedule exactly — the close events of the open
// windows and every not-yet-fired action, at the same (at, id) pairs.
// "Restore" is replay (DESIGN.md §10): a fresh driver advanced to the
// same offset must carry an identical injector schedule and digest.
TEST(FaultInjector, CheckpointMidOutageRestoresRemainingSchedule) {
  using snapshot::replay::ReplayDriver;

  FaultPlan plan;
  plan.link_outages.push_back({sec(4), sec(4)});           // open [4, 8]
  plan.link_outages.push_back({sec(10), sec(2)});          // entirely ahead
  plan.storage_degradations.push_back({sec(5), sec(6), 4.0, 0.0});  // open [5, 11]
  const scenario::ScenarioSpec scen =
      scenario::single_video("fig16", 480, 30, 16, mem::PressureLevel::Normal, 11, plan);

  ReplayDriver a(scen);
  a.start();
  ASSERT_TRUE(a.advance_to_offset(sec(6)));  // inside both open windows
  fault::FaultInjector* inj_a = a.driver().injector();
  ASSERT_NE(inj_a, nullptr);
  EXPECT_EQ(inj_a->open_outages(), 1);
  EXPECT_EQ(inj_a->open_storage_windows(), 1);
  const auto sched_a = inj_a->pending_schedule();
  // Still pending: outage-1 close (+8), outage-2 open (+10) and close
  // (+12), storage-window close (+11).
  ASSERT_EQ(sched_a.size(), 4u);
  const sim::Time video_start = a.video_start();
  EXPECT_EQ(sched_a.front().at, video_start + sec(8));
  EXPECT_EQ(sched_a.back().at, video_start + sec(12));

  ReplayDriver b(scen);
  b.start();
  ASSERT_TRUE(b.advance_to_offset(sec(6)));
  fault::FaultInjector* inj_b = b.driver().injector();
  ASSERT_NE(inj_b, nullptr);
  const auto sched_b = inj_b->pending_schedule();
  ASSERT_EQ(sched_b.size(), sched_a.size());
  for (std::size_t i = 0; i < sched_a.size(); ++i) {
    EXPECT_EQ(sched_a[i].at, sched_b[i].at) << "entry " << i;
    EXPECT_EQ(sched_a[i].id, sched_b[i].id) << "entry " << i;
  }
  EXPECT_EQ(inj_a->digest(), inj_b->digest());
  EXPECT_EQ(a.digest(), b.digest());

  // Running on from the checkpoint closes the windows identically: the
  // replayed world is indistinguishable from the original to the end.
  while (!a.done()) a.advance_to_offset(a.offset() + sec(2));
  while (!b.done()) b.advance_to_offset(b.offset() + sec(2));
  EXPECT_EQ(inj_a->open_outages(), 0);
  EXPECT_EQ(inj_a->log().size(), inj_b->log().size());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(InvariantWatchdog, CleanRunReportsNoViolations) {
  core::Testbed tb(core::nexus5(), 5);
  tb.boot();
  InvariantWatchdog watchdog(tb.engine, WatchdogConfig{}, &tb.memory, &tb.tracer);
  watchdog.start();
  tb.engine.run_until(tb.engine.now() + sec(5));
  EXPECT_TRUE(watchdog.check_now());
  watchdog.stop();
  EXPECT_GT(watchdog.ticks(), 10u);
  EXPECT_TRUE(watchdog.ok());
  EXPECT_FALSE(watchdog.running());
}

TEST(InvariantWatchdog, FlagsPendingEventLeak) {
  sim::Engine engine;
  WatchdogConfig config;
  config.max_pending_events = 8;
  InvariantWatchdog watchdog(engine, config);
  for (int i = 0; i < 20; ++i) engine.schedule_at(sim::hours(1), [] {});
  EXPECT_FALSE(watchdog.check_now());
  ASSERT_FALSE(watchdog.violations().empty());
  EXPECT_NE(watchdog.violations().front().what.find("pending"), std::string::npos);
}

TEST(InvariantWatchdog, CatchesZeroDelayLivelockLoop) {
  sim::Engine engine;
  WatchdogConfig config;
  config.livelock_limit = 100;
  InvariantWatchdog watchdog(engine, config);
  watchdog.start();  // arms the engine tripwire
  // A bounded zero-delay reschedule loop: 500 same-timestamp events.
  auto counter = std::make_shared<int>(0);
  std::function<void()> spin = [&engine, counter, &spin] {
    if (++*counter < 500) engine.schedule(0, spin);
  };
  engine.schedule_at(msec(10), spin);
  engine.run_until(sec(1));
  EXPECT_GE(engine.livelock_trips(), 1u);
  watchdog.check_now();
  watchdog.stop();
  ASSERT_FALSE(watchdog.ok());
  EXPECT_NE(watchdog.violations().front().what.find("livelock"), std::string::npos);
}

}  // namespace
}  // namespace mvqoe::fault
