#include <gtest/gtest.h>

#include "net/link.hpp"

namespace mvqoe::net {
namespace {

using sim::msec;

TEST(Link, IdleTransferTimeScalesWithBytes) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;  // 1 MB/s
  config.propagation = msec(2);
  config.per_transfer_overhead = msec(6);
  Link link(engine, config);
  EXPECT_EQ(link.idle_transfer_time(0), msec(8));
  EXPECT_EQ(link.idle_transfer_time(1'000'000), msec(8) + sim::sec(1));
}

TEST(Link, TransferCompletesAtExpectedTime) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 80.0;
  Link link(engine, config);
  sim::Time done = -1;
  link.transfer(1'000'000, [&](bool ok) {  // 1 MB at 10 MB/s
    EXPECT_TRUE(ok);
    done = engine.now();
  });
  engine.run();
  EXPECT_EQ(done, link.idle_transfer_time(1'000'000));
  EXPECT_EQ(link.bytes_delivered(), 1'000'000u);
  EXPECT_EQ(link.counters().completed, 1u);
}

TEST(Link, TransfersAreSerializedFifo) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  std::vector<int> order;
  sim::Time first_done = -1;
  sim::Time second_done = -1;
  link.transfer(1'000'000, [&](bool) {
    order.push_back(1);
    first_done = engine.now();
  });
  link.transfer(1'000'000, [&](bool) {
    order.push_back(2);
    second_done = engine.now();
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GT(second_done, first_done);
}

TEST(Link, QueueDepthReflectsBacklog) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  for (int i = 0; i < 3; ++i) link.transfer(1'000'000, nullptr);
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queued(), 2u);  // one in flight, two waiting
  engine.run();
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.queued(), 0u);
}

TEST(Link, RateChangeAffectsSubsequentTransfers) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 80.0;
  Link link(engine, config);
  const sim::Time fast = link.idle_transfer_time(1'000'000);
  link.set_rate_mbps(8.0);
  const sim::Time slow = link.idle_transfer_time(1'000'000);
  EXPECT_GT(slow, fast);
}

TEST(Link, SegmentSizedTransfersAreFastOnLan) {
  // §4.1 invariant: the network must never be the bottleneck. A 4-second
  // 1440p60 segment (24 Mbps -> 12 MB) must download in well under 4 s.
  sim::Engine engine;
  Link link(engine, LinkConfig{});  // 80 Mbps default
  sim::Time done = -1;
  link.transfer(12'000'000, [&](bool) { done = engine.now(); });
  engine.run();
  EXPECT_LT(done, sim::sec(2));
}

TEST(Link, MidTransferRateChangeRepacesRemainingBytes) {
  // Regression for the dispatch-time completion bug: the completion used
  // to be computed when the transfer started, so a mid-flight rate change
  // had no effect on it. 8 MB at 8 Mbps = 1 MB/s -> 8 s total. Halfway
  // through (4 MB on the wire), the rate drops 10x: the remaining 4 MB
  // must now take 40 s, not 4 s.
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  config.propagation = 0;
  config.per_transfer_overhead = 0;
  Link link(engine, config);
  sim::Time done = -1;
  link.transfer(8'000'000, [&](bool ok) {
    EXPECT_TRUE(ok);
    done = engine.now();
  });
  engine.run_until(sim::sec(4));
  link.set_rate_mbps(0.8);
  engine.run();
  EXPECT_EQ(done, sim::sec(44));
}

TEST(Link, MidTransferSpeedupRepacesToo) {
  // 8 s transfer; after 2 s the rate x4: remaining 6 MB at 4 MB/s = 1.5 s.
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  config.propagation = 0;
  config.per_transfer_overhead = 0;
  Link link(engine, config);
  sim::Time done = -1;
  link.transfer(8'000'000, [&](bool) { done = engine.now(); });
  engine.run_until(sim::sec(2));
  link.set_rate_mbps(32.0);
  engine.run();
  EXPECT_EQ(done, sim::sec(2) + msec(1500));
}

TEST(Link, OutageFreezesProgressAndResumesOnRestore) {
  // 1 MB at 1 MB/s with no setup = 1 s. Down from t=0.4 to t=5.4: the
  // remaining 0.6 MB resumes on restore -> completes at 6.0 s.
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  config.propagation = 0;
  config.per_transfer_overhead = 0;
  Link link(engine, config);
  sim::Time done = -1;
  link.transfer(1'000'000, [&](bool ok) {
    EXPECT_TRUE(ok);
    done = engine.now();
  });
  engine.run_until(msec(400));
  link.set_down(true);
  EXPECT_TRUE(link.down());
  engine.run_until(msec(5400));
  EXPECT_EQ(done, -1);  // frozen, not completed and not failed
  link.set_down(false);
  engine.run();
  EXPECT_EQ(done, sim::sec(6));
  EXPECT_EQ(link.counters().outages, 1u);
}

TEST(Link, CancelSuppressesCallbackAndStartsNextTransfer) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  Link link(engine, config);
  bool first_fired = false;
  sim::Time second_done = -1;
  const TransferId first = link.transfer(1'000'000, [&](bool) { first_fired = true; });
  link.transfer(1'000'000, [&](bool) { second_done = engine.now(); });
  engine.run_until(msec(100));
  EXPECT_TRUE(link.cancel(first));
  EXPECT_FALSE(link.cancel(first));  // already gone
  engine.run();
  EXPECT_FALSE(first_fired);
  EXPECT_EQ(link.counters().cancelled, 1u);
  // The second transfer restarted at the cancel instant.
  EXPECT_EQ(second_done, msec(100) + link.idle_transfer_time(1'000'000));
}

TEST(Link, CancelQueuedTransferNeverStartsIt) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  bool queued_fired = false;
  link.transfer(1'000'000, nullptr);
  const TransferId queued = link.transfer(1'000'000, [&](bool) { queued_fired = true; });
  EXPECT_TRUE(link.cancel(queued));
  engine.run();
  EXPECT_FALSE(queued_fired);
  EXPECT_EQ(link.bytes_delivered(), 1'000'000u);
}

TEST(Link, TransferTimeoutFailsSlowTransfer) {
  // 8 s transfer against a 2 s active-time budget: fails at t=2 with
  // ok=false, and the next queued transfer proceeds.
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  config.propagation = 0;
  config.per_transfer_overhead = 0;
  config.transfer_timeout = sim::sec(2);
  Link link(engine, config);
  bool first_ok = true;
  sim::Time failed_at = -1;
  link.transfer(8'000'000, [&](bool ok) {
    first_ok = ok;
    failed_at = engine.now();
  });
  bool second_ok = false;
  link.transfer(500'000, [&](bool ok) { second_ok = ok; });
  engine.run();
  EXPECT_FALSE(first_ok);
  EXPECT_EQ(failed_at, sim::sec(2));
  EXPECT_EQ(link.counters().timed_out, 1u);
  EXPECT_TRUE(second_ok);
}

TEST(Link, DownTimeDoesNotCountAgainstTimeout) {
  // 0.5 s transfer, 2 s timeout. Down for 10 s mid-flight: the timeout
  // clock only counts active time, so the transfer still succeeds.
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;
  config.propagation = 0;
  config.per_transfer_overhead = 0;
  config.transfer_timeout = sim::sec(2);
  Link link(engine, config);
  bool ok_result = false;
  bool fired = false;
  link.transfer(500'000, [&](bool ok) {
    fired = true;
    ok_result = ok;
  });
  engine.run_until(msec(100));
  link.set_down(true);
  engine.run_until(sim::sec(10));
  link.set_down(false);
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(ok_result);
}

}  // namespace
}  // namespace mvqoe::net
