#include <gtest/gtest.h>

#include "net/link.hpp"

namespace mvqoe::net {
namespace {

using sim::msec;

TEST(Link, IdleTransferTimeScalesWithBytes) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 8.0;  // 1 MB/s
  config.propagation = msec(2);
  config.per_transfer_overhead = msec(6);
  Link link(engine, config);
  EXPECT_EQ(link.idle_transfer_time(0), msec(8));
  EXPECT_EQ(link.idle_transfer_time(1'000'000), msec(8) + sim::sec(1));
}

TEST(Link, TransferCompletesAtExpectedTime) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 80.0;
  Link link(engine, config);
  sim::Time done = -1;
  link.transfer(1'000'000, [&] { done = engine.now(); });  // 1 MB at 10 MB/s
  engine.run();
  EXPECT_EQ(done, link.idle_transfer_time(1'000'000));
  EXPECT_EQ(link.bytes_delivered(), 1'000'000u);
}

TEST(Link, TransfersAreSerializedFifo) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  std::vector<int> order;
  sim::Time first_done = -1;
  sim::Time second_done = -1;
  link.transfer(1'000'000, [&] {
    order.push_back(1);
    first_done = engine.now();
  });
  link.transfer(1'000'000, [&] {
    order.push_back(2);
    second_done = engine.now();
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GT(second_done, first_done);
}

TEST(Link, QueueDepthReflectsBacklog) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  for (int i = 0; i < 3; ++i) link.transfer(1'000'000, nullptr);
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queued(), 2u);  // one in flight, two waiting
  engine.run();
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.queued(), 0u);
}

TEST(Link, RateChangeAffectsSubsequentTransfers) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_mbps = 80.0;
  Link link(engine, config);
  const sim::Time fast = link.idle_transfer_time(1'000'000);
  link.set_rate_mbps(8.0);
  const sim::Time slow = link.idle_transfer_time(1'000'000);
  EXPECT_GT(slow, fast);
}

TEST(Link, SegmentSizedTransfersAreFastOnLan) {
  // §4.1 invariant: the network must never be the bottleneck. A 4-second
  // 1440p60 segment (24 Mbps -> 12 MB) must download in well under 4 s.
  sim::Engine engine;
  Link link(engine, LinkConfig{});  // 80 Mbps default
  sim::Time done = -1;
  link.transfer(12'000'000, [&] { done = engine.now(); });
  engine.run();
  EXPECT_LT(done, sim::sec(2));
}

}  // namespace
}  // namespace mvqoe::net
