#!/bin/sh
# Kill-and-resume smoke for the multi-process fuzz campaign (ISSUE 6
# acceptance scenario): a --procs 4 campaign SIGKILLed partway through
# (coordinator suicide right after a progress checkpoint) and resumed
# from its state file must print the exact digest of an uninterrupted
# serial run.
set -u

FUZZ="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mvqoe_resume_smoke.XXXXXX")" || exit 1
trap 'rm -rf "$WORK"' EXIT

STATE="$WORK/campaign.mvqs"
SEED=5
RUNS=200

echo "== uninterrupted serial run =="
"$FUZZ" --seed $SEED --runs $RUNS --jobs 1 --no-meta --out "$WORK" \
    > "$WORK/serial.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "serial run failed with exit $status"
  cat "$WORK/serial.log"
  exit 1
fi
serial_digest=$(sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$WORK/serial.log" | tail -1)
echo "serial digest: $serial_digest"
[ -n "$serial_digest" ] || { cat "$WORK/serial.log"; exit 1; }

echo "== campaign SIGKILLed after 2 progress checkpoints =="
"$FUZZ" --seed $SEED --runs $RUNS --procs 4 --no-meta --out "$WORK" \
    --state "$STATE" --kill-after-checkpoints 2 > "$WORK/killed.log" 2>&1
status=$?
# 137 = 128 + SIGKILL: the coordinator must actually die, not exit.
if [ $status -ne 137 ]; then
  echo "expected the campaign to die by SIGKILL (exit 137), got $status"
  cat "$WORK/killed.log"
  exit 1
fi
[ -f "$STATE" ] || { echo "no checkpoint at $STATE"; exit 1; }

echo "== resume from the checkpoint =="
"$FUZZ" --resume "$STATE" --procs 4 --no-meta --out "$WORK" \
    > "$WORK/resume.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "resume failed with exit $status"
  cat "$WORK/resume.log"
  exit 1
fi
grep -q "resumed:" "$WORK/resume.log" || {
  echo "resume did not report checkpointed runs"
  cat "$WORK/resume.log"
  exit 1
}
resumed_digest=$(sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$WORK/resume.log" | tail -1)
echo "resumed digest: $resumed_digest"

if [ "$resumed_digest" != "$serial_digest" ]; then
  echo "DIGEST MISMATCH: serial=$serial_digest resumed=$resumed_digest"
  cat "$WORK/resume.log"
  exit 1
fi
echo "OK: kill-and-resume digest identical to uninterrupted serial run"
exit 0
