#include <gtest/gtest.h>

#include "qoe/metrics.hpp"
#include "qoe/mos.hpp"

namespace mvqoe::qoe {
namespace {

TEST(RunAggregate, DropRateMeanAndCi) {
  RunAggregate aggregate;
  for (const double rate : {0.10, 0.20, 0.30, 0.20, 0.20}) {
    RunOutcome outcome;
    outcome.drop_rate = rate;
    outcome.mean_pss_mb = 300.0;
    outcome.peak_pss_mb = 340.0;
    outcome.startup_delay_s = 0.5;
    aggregate.add(outcome);
  }
  const auto drop = aggregate.drop_rate();
  EXPECT_NEAR(drop.mean, 0.20, 1e-12);
  EXPECT_GT(drop.ci95, 0.0);
  EXPECT_EQ(aggregate.runs(), 5u);
}

TEST(RunAggregate, CrashRatePercent) {
  RunAggregate aggregate;
  aggregate.add(RunOutcome{1.0, true});
  aggregate.add(RunOutcome{0.1, false});
  aggregate.add(RunOutcome{1.0, true});
  aggregate.add(RunOutcome{0.1, false});
  aggregate.add(RunOutcome{1.0, true});
  EXPECT_DOUBLE_EQ(aggregate.crash_rate_percent(), 60.0);
}

TEST(RunAggregate, CompletedOnlyExcludesCrashes) {
  RunAggregate aggregate;
  aggregate.add(RunOutcome{0.95, true});
  aggregate.add(RunOutcome{0.10, false});
  aggregate.add(RunOutcome{0.20, false});
  EXPECT_NEAR(aggregate.drop_rate_completed().mean, 0.15, 1e-12);
  EXPECT_EQ(aggregate.drop_rate_completed().n, 2u);
}

TEST(RunAggregate, EmptyIsSafe) {
  RunAggregate aggregate;
  EXPECT_DOUBLE_EQ(aggregate.crash_rate_percent(), 0.0);
  EXPECT_EQ(aggregate.drop_rate().n, 0u);
}

TEST(RunAggregate, PssMinMaxAcrossRuns) {
  RunAggregate aggregate;
  RunOutcome first;
  first.mean_pss_mb = 300.0;
  first.peak_pss_mb = 320.0;
  aggregate.add(first);
  RunOutcome second;
  second.mean_pss_mb = 310.0;
  second.peak_pss_mb = 360.0;
  aggregate.add(second);
  EXPECT_DOUBLE_EQ(aggregate.min_peak_pss_mb(), 320.0);
  EXPECT_DOUBLE_EQ(aggregate.max_peak_pss_mb(), 360.0);
  EXPECT_NEAR(aggregate.mean_pss_mb().mean, 305.0, 1e-12);
}

TEST(FormatMeanCi, RendersPlusMinus) {
  stats::MeanCi value;
  value.mean = 12.34;
  value.ci95 = 1.23;
  EXPECT_EQ(format_mean_ci(value, 1), "12.3 +- 1.2");
}

TEST(MosModel, AnnoyanceMonotoneInDropRate) {
  MosModel model;
  double previous = -1.0;
  for (double rate = 0.0; rate <= 1.0; rate += 0.05) {
    const double annoyance = model.annoyance(rate);
    EXPECT_GE(annoyance, previous);
    EXPECT_GE(annoyance, 0.0);
    EXPECT_LE(annoyance, 1.0);
    previous = annoyance;
  }
}

TEST(MosModel, FewDropsAreImperceptible) {
  MosModel model;
  EXPECT_LT(model.annoyance(0.01), 0.15);
  EXPECT_NEAR(model.annoyance(0.0), 0.0, 1e-9);
}

TEST(MosModel, HeavyDropsSaturate) {
  MosModel model;
  EXPECT_GT(model.annoyance(0.60), 0.95);
}

TEST(MosModel, DifferentialScoreFiveWhenClipsIdentical) {
  MosModel model;
  stats::Rng rng(1);
  int total = 0;
  for (int i = 0; i < 200; ++i) total += model.differential_score(0.03, 0.03, rng);
  EXPECT_GT(static_cast<double>(total) / 200.0, 4.0);
}

TEST(MosModel, SurveyReproducesFig10Shape) {
  // Fig 10: 99 raters, 3% vs 35% drops; "vast majority" notice, with 60
  // raters scoring 1 or 2.
  const auto survey = run_dmos_survey(MosModel{}, 0.03, 0.35, 99, 42);
  ASSERT_EQ(survey.scores.size(), 99u);
  const std::size_t low = survey.count(1) + survey.count(2);
  EXPECT_GE(low, 50u);
  EXPECT_LE(low, 75u);
  EXPECT_LT(survey.mean(), 2.8);
  EXPECT_GT(survey.mean(), 1.4);
}

TEST(MosModel, SurveyDeterministicPerSeed) {
  const auto a = run_dmos_survey(MosModel{}, 0.03, 0.35, 99, 7);
  const auto b = run_dmos_survey(MosModel{}, 0.03, 0.35, 99, 7);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(MosModel, WorseDegradationLowersScores) {
  const auto mild = run_dmos_survey(MosModel{}, 0.03, 0.10, 99, 9);
  const auto severe = run_dmos_survey(MosModel{}, 0.03, 0.50, 99, 9);
  EXPECT_GT(mild.mean(), severe.mean());
}

}  // namespace
}  // namespace mvqoe::qoe
