#include <gtest/gtest.h>

#include "trace/analysis.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::trace {
namespace {

using sim::msec;
using sim::sec;

ThreadMeta meta(ThreadId tid, const std::string& name, const std::string& proc = "app") {
  return ThreadMeta{tid, 100, name, proc};
}

TEST(Tracer, StateIntervalsAreClosedOnTransition) {
  Tracer tracer;
  tracer.register_thread(meta(1, "worker"));
  tracer.state_change(1, 0, ThreadState::Runnable);
  tracer.state_change(1, msec(10), ThreadState::Running);
  tracer.state_change(1, msec(30), ThreadState::Sleeping);
  tracer.finalize(msec(50));

  ASSERT_EQ(tracer.intervals().size(), 3u);
  EXPECT_EQ(tracer.intervals()[0].state, ThreadState::Runnable);
  EXPECT_EQ(tracer.intervals()[0].end - tracer.intervals()[0].begin, msec(10));
  EXPECT_EQ(tracer.intervals()[1].state, ThreadState::Running);
  EXPECT_EQ(tracer.intervals()[1].end - tracer.intervals()[1].begin, msec(20));
}

TEST(Tracer, ZeroLengthIntervalsDropped) {
  Tracer tracer;
  tracer.register_thread(meta(1, "t"));
  tracer.state_change(1, msec(5), ThreadState::Sleeping);
  tracer.state_change(1, msec(5), ThreadState::Runnable);  // same instant
  tracer.state_change(1, msec(9), ThreadState::Running);
  tracer.finalize(msec(9));
  ASSERT_EQ(tracer.intervals().size(), 1u);
  EXPECT_EQ(tracer.intervals()[0].state, ThreadState::Runnable);
}

TEST(Tracer, FinalizeIsIdempotentPerInstant) {
  Tracer tracer;
  tracer.register_thread(meta(1, "t"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.finalize(sec(1));
  tracer.finalize(sec(1));
  EXPECT_EQ(tracer.intervals().size(), 1u);
}

TEST(Tracer, TerminatedClosesForGood) {
  Tracer tracer;
  tracer.register_thread(meta(1, "t"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.state_change(1, sec(1), ThreadState::Terminated);
  tracer.finalize(sec(5));
  ASSERT_EQ(tracer.intervals().size(), 1u);
  EXPECT_EQ(tracer.intervals()[0].end, sec(1));
}

TEST(Tracer, ClearEventsKeepsThreadRegistry) {
  Tracer tracer;
  tracer.register_thread(meta(1, "t"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.instant(InstantKind::FrameDropped, sec(1), 1, 7);
  tracer.finalize(sec(2));
  tracer.clear_events();
  EXPECT_TRUE(tracer.intervals().empty());
  EXPECT_TRUE(tracer.instants().empty());
  EXPECT_NE(tracer.thread(1), nullptr);
}

TEST(Analysis, StateTimesSumPerState) {
  Tracer tracer;
  tracer.register_thread(meta(1, "a"));
  tracer.register_thread(meta(2, "b"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.state_change(1, sec(2), ThreadState::Runnable);
  tracer.state_change(1, sec(3), ThreadState::RunnablePreempted, 9);
  tracer.state_change(1, sec(5), ThreadState::Running);
  tracer.state_change(2, 0, ThreadState::Running);
  tracer.finalize(sec(6));

  const auto both = state_times(tracer, {1, 2});
  EXPECT_DOUBLE_EQ(both.running, 2.0 + 1.0 + 6.0);
  EXPECT_DOUBLE_EQ(both.runnable, 1.0);
  EXPECT_DOUBLE_EQ(both.runnable_preempted, 2.0);

  const auto only_a = state_times(tracer, {1});
  EXPECT_DOUBLE_EQ(only_a.running, 3.0);
}

TEST(Analysis, StateTimesRespectsWindow) {
  Tracer tracer;
  tracer.register_thread(meta(1, "a"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.finalize(sec(10));
  const auto windowed = state_times(tracer, {1}, sec(2), sec(5));
  EXPECT_DOUBLE_EQ(windowed.running, 3.0);
}

TEST(Analysis, TopRunningThreadsRanked) {
  Tracer tracer;
  tracer.register_thread(meta(1, "small"));
  tracer.register_thread(meta(2, "big"));
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.state_change(1, sec(1), ThreadState::Sleeping);
  tracer.state_change(2, sec(1), ThreadState::Running);
  tracer.state_change(2, sec(9), ThreadState::Sleeping);
  tracer.finalize(sec(9));

  const auto top = top_running_threads(tracer);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "big");
  EXPECT_EQ(top[0].rank, 1u);
  EXPECT_DOUBLE_EQ(top[0].running_seconds, 8.0);
  EXPECT_EQ(running_rank(tracer, "small"), 2u);
  EXPECT_EQ(running_rank(tracer, "absent"), 0u);
}

TEST(Analysis, PreemptionStatsFiltersByPreemptorName) {
  Tracer tracer;
  tracer.register_thread(meta(1, "victim"));
  tracer.register_thread(meta(2, "mmcqd", "kernel"));
  tracer.register_thread(meta(3, "other"));
  tracer.preemption({1, 2, sec(1), msec(10), msec(40)});
  tracer.preemption({1, 2, sec(2), msec(20), msec(60)});
  tracer.preemption({1, 3, sec(3), msec(99), msec(99)});

  const auto stats = preemption_stats(tracer, {1}, "mmcqd");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.preemptor_run_seconds, 0.03);
  EXPECT_DOUBLE_EQ(stats.victim_wait_seconds, 0.1);
}

TEST(Analysis, StateFractionsSumToOne) {
  Tracer tracer;
  tracer.register_thread(meta(1, "kswapd", "kernel"));
  tracer.state_change(1, 0, ThreadState::Sleeping);
  tracer.state_change(1, sec(6), ThreadState::Running);
  tracer.state_change(1, sec(8), ThreadState::Runnable);
  tracer.finalize(sec(10));

  const auto fractions = state_fractions(tracer, 1);
  EXPECT_DOUBLE_EQ(fractions.at("Sleeping"), 0.6);
  EXPECT_DOUBLE_EQ(fractions.at("Running"), 0.2);
  double total = 0.0;
  for (const auto& [name, f] : fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Analysis, PerSecondSeriesAveragesWithinBuckets) {
  Tracer tracer;
  tracer.counter("fps", msec(100), 60.0);
  tracer.counter("fps", msec(900), 30.0);
  tracer.counter("fps", sec(2), 24.0);
  const auto series = per_second_series(tracer, "fps", -1.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 45.0);
  EXPECT_DOUBLE_EQ(series[1], -1.0);  // no samples -> default
  EXPECT_DOUBLE_EQ(series[2], 24.0);
}

TEST(Analysis, InstantsPerSecondAndCumulative) {
  Tracer tracer;
  tracer.instant(InstantKind::ProcessKilled, msec(500), 1, 900);
  tracer.instant(InstantKind::ProcessKilled, msec(700), 2, 901);
  tracer.instant(InstantKind::ProcessKilled, sec(2) + msec(1), 3, 902);
  tracer.instant(InstantKind::FrameDropped, sec(1), 4, 0);

  const auto kills = instants_per_second(tracer, InstantKind::ProcessKilled);
  ASSERT_EQ(kills.size(), 3u);
  EXPECT_EQ(kills[0], 2u);
  EXPECT_EQ(kills[1], 0u);
  EXPECT_EQ(kills[2], 1u);

  const auto cumulative = cumulative_instants(tracer, InstantKind::ProcessKilled);
  EXPECT_EQ(cumulative[0], 2u);
  EXPECT_EQ(cumulative[2], 3u);
}

TEST(Analysis, RunningFractionPerSecond) {
  Tracer tracer;
  tracer.register_thread(meta(1, "lmkd"));
  // Runs 0.0-0.5s, sleeps, runs again 2.25-2.75s.
  tracer.state_change(1, 0, ThreadState::Running);
  tracer.state_change(1, msec(500), ThreadState::Sleeping);
  tracer.state_change(1, msec(2250), ThreadState::Running);
  tracer.state_change(1, msec(2750), ThreadState::Sleeping);
  tracer.finalize(sec(4));

  const auto fractions = running_fraction_per_second(tracer, 1);
  ASSERT_GE(fractions.size(), 4u);
  EXPECT_NEAR(fractions[0], 0.5, 1e-9);
  EXPECT_NEAR(fractions[1], 0.0, 1e-9);
  EXPECT_NEAR(fractions[2], 0.5, 1e-9);
  EXPECT_NEAR(fractions[3], 0.0, 1e-9);
}

TEST(Analysis, RunningFractionSpanningSecondBoundary) {
  Tracer tracer;
  tracer.register_thread(meta(1, "t"));
  tracer.state_change(1, msec(800), ThreadState::Running);
  tracer.state_change(1, msec(1400), ThreadState::Sleeping);
  tracer.finalize(sec(2));
  const auto fractions = running_fraction_per_second(tracer, 1);
  ASSERT_GE(fractions.size(), 2u);
  EXPECT_NEAR(fractions[0], 0.2, 1e-9);
  EXPECT_NEAR(fractions[1], 0.4, 1e-9);
}

TEST(Analysis, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(ThreadState::Running), "Running");
  EXPECT_STREQ(to_string(ThreadState::RunnablePreempted), "Runnable (Preempted)");
  EXPECT_STREQ(to_string(ThreadState::BlockedIo), "Blocked I/O");
}

}  // namespace
}  // namespace mvqoe::trace
