#include <gtest/gtest.h>

#include "storage/storage.hpp"
#include "trace/analysis.hpp"

namespace mvqoe::storage {
namespace {

using sim::msec;
using sim::sec;
using sim::usec;

struct Fixture {
  sim::Engine engine;
  trace::Tracer tracer;
  sched::Scheduler scheduler;
  Fixture(std::size_t cores = 1, double freq = 1.0)
      : scheduler(engine, tracer, make_config(cores, freq)) {}
  static sched::SchedulerConfig make_config(std::size_t cores, double freq) {
    sched::SchedulerConfig config;
    config.cores = std::vector<sched::CoreConfig>(cores, sched::CoreConfig{freq});
    config.context_switch_cost_refus = 0.0;
    config.migration_cost_refus = 0.0;
    return config;
  }
};

TEST(Storage, TransferTimeScalesWithBytes) {
  Fixture fx;
  StorageConfig config;
  config.read_bandwidth_mbps = 100.0;  // 100 MB/s -> 10 µs per KB
  config.request_latency = usec(250);
  StorageDevice dev(fx.engine, fx.scheduler, config);
  EXPECT_EQ(dev.transfer_time(false, 0), usec(250));
  EXPECT_EQ(dev.transfer_time(false, 100 * 1000), usec(250) + usec(1000));
}

TEST(Storage, WriteSlowerThanRead) {
  Fixture fx;
  StorageConfig config;
  config.read_bandwidth_mbps = 140.0;
  config.write_bandwidth_mbps = 45.0;
  StorageDevice dev(fx.engine, fx.scheduler, config);
  EXPECT_GT(dev.transfer_time(true, 1 << 20), dev.transfer_time(false, 1 << 20));
}

TEST(Storage, RequestCompletesAndCountersUpdate) {
  Fixture fx;
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  bool completed = false;
  dev.submit(IoRequest{false, 4096, [&] { completed = true; }});
  fx.engine.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(dev.counters().reads, 1u);
  EXPECT_EQ(dev.counters().read_bytes, 4096u);
  EXPECT_EQ(dev.queue_depth(), 0u);
  EXPECT_FALSE(dev.busy());
}

TEST(Storage, RequestsServicedInFifoOrder) {
  Fixture fx;
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    dev.submit(IoRequest{i % 2 == 1, 4096, [&order, i] { order.push_back(i); }});
  }
  fx.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dev.counters().reads, 3u);
  EXPECT_EQ(dev.counters().writes, 2u);
}

TEST(Storage, EmptyCallbackIsAllowed) {
  Fixture fx;
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  dev.submit(IoRequest{true, 4096, nullptr});
  fx.engine.run();
  EXPECT_EQ(dev.counters().writes, 1u);
}

TEST(Storage, MmcqdPreemptsFairThreadPerRequest) {
  Fixture fx;
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  // A fair hog occupies the single core; each I/O request should preempt
  // it twice (dispatch + completion bursts).
  const auto hog = fx.scheduler.create_thread([] {
    sched::ThreadSpec spec;
    spec.name = "video";
    spec.pid = 100;
    spec.process_name = "app";
    return spec;
  }());
  fx.scheduler.run_work(hog, 2'000'000.0, [] {});
  fx.engine.schedule(msec(5), [&] { dev.submit(IoRequest{false, 4096, nullptr}); });
  fx.engine.schedule(msec(50), [&] { dev.submit(IoRequest{false, 4096, nullptr}); });
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());

  const auto stats = trace::preemption_stats(fx.tracer, {hog}, "mmcqd");
  EXPECT_EQ(stats.count, 4u);  // 2 requests x (dispatch + completion)
  EXPECT_GT(stats.victim_wait_seconds, 0.0);
}

TEST(Storage, VictimWaitCoversDeviceTransfer) {
  Fixture fx;
  StorageConfig config;
  config.request_latency = msec(2);
  StorageDevice dev(fx.engine, fx.scheduler, config);
  const auto hog = fx.scheduler.create_thread([] {
    sched::ThreadSpec spec;
    spec.name = "video";
    spec.pid = 100;
    spec.process_name = "app";
    return spec;
  }());
  fx.scheduler.run_work(hog, 1'000'000.0, [] {});
  fx.engine.schedule(msec(5), [&] { dev.submit(IoRequest{false, 4096, nullptr}); });
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());

  // While mmcqd blocks on the 2ms transfer the victim runs again, so the
  // first preemption's wait is just the dispatch burst (60 ref-µs).
  const auto& recs = fx.tracer.preemptions();
  ASSERT_GE(recs.size(), 1u);
  EXPECT_LE(recs[0].victim_wait, usec(100));
}

TEST(Storage, MmcqdTracedAsKernelThread) {
  Fixture fx;
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  const auto* meta = fx.tracer.thread(dev.mmcqd_tid());
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->name, "mmcqd");
  EXPECT_EQ(meta->process_name, "kernel");
}

TEST(Storage, HighRequestRateKeepsMmcqdBusy) {
  Fixture fx(2);
  StorageDevice dev(fx.engine, fx.scheduler, StorageConfig{});
  // Sustained 4 KB page-in storm, as in thrashing.
  for (int i = 0; i < 500; ++i) dev.submit(IoRequest{false, 4096, nullptr});
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());
  const auto top = trace::top_running_threads(fx.tracer);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].name, "mmcqd");
  EXPECT_EQ(dev.counters().reads, 500u);
}

}  // namespace
}  // namespace mvqoe::storage
