#include <gtest/gtest.h>

#include "proc/activity_manager.hpp"
#include "trace/analysis.hpp"
#include "video/session.hpp"

namespace mvqoe::video {
namespace {

using mem::pages_from_mb;
using sim::sec;

// -------- Ladder -------------------------------------------------------------

TEST(Ladder, YoutubeCoversResolutionFpsGrid) {
  const auto ladder = BitrateLadder::youtube();
  EXPECT_EQ(ladder.rungs().size(), 6u * 4u);
  EXPECT_EQ(ladder.heights(), (std::vector<int>{240, 360, 480, 720, 1080, 1440}));
  EXPECT_EQ(ladder.frame_rates(), (std::vector<int>{24, 30, 48, 60}));
}

TEST(Ladder, RecommendedBitratesMatchYoutubeAnchors) {
  const auto ladder = BitrateLadder::youtube();
  EXPECT_EQ(ladder.find(1080, 30)->bitrate_kbps, 8000);
  EXPECT_EQ(ladder.find(1080, 60)->bitrate_kbps, 12000);  // 1.5x HFR premium
  EXPECT_EQ(ladder.find(720, 30)->bitrate_kbps, 5000);
  EXPECT_EQ(ladder.find(480, 30)->bitrate_kbps, 2500);
}

TEST(Ladder, SixtyFpsAlwaysCostsMoreThanThirty) {
  const auto ladder = BitrateLadder::youtube();
  for (const int height : ladder.heights()) {
    EXPECT_GT(ladder.find(height, 60)->bitrate_kbps, ladder.find(height, 30)->bitrate_kbps);
  }
}

TEST(Ladder, StepDownFindsNextLowerSameFps) {
  const auto ladder = BitrateLadder::youtube();
  const auto down = ladder.step_down(*ladder.find(1080, 30));
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->resolution.height, 720);
  EXPECT_EQ(down->fps, 30);
  EXPECT_FALSE(ladder.step_down(*ladder.find(240, 30)).has_value());
}

TEST(Ladder, StepUpFindsNextHigherSameFps) {
  const auto ladder = BitrateLadder::youtube();
  const auto up = ladder.step_up(*ladder.find(480, 60));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->resolution.height, 720);
  EXPECT_FALSE(ladder.step_up(*ladder.find(1440, 60)).has_value());
}

TEST(Ladder, WithFpsKeepsResolution) {
  const auto ladder = BitrateLadder::youtube();
  const auto rung = ladder.with_fps(*ladder.find(1080, 60), 24);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->resolution.height, 1080);
  EXPECT_EQ(rung->fps, 24);
  EXPECT_LT(rung->bitrate_kbps, ladder.find(1080, 60)->bitrate_kbps);
}

TEST(Ladder, BestUnderRespectsCaps) {
  const auto ladder = BitrateLadder::youtube();
  const auto best = ladder.best_under(720, 30);
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->resolution.height, 720);
  EXPECT_LE(best->fps, 30);
  EXPECT_EQ(best->resolution.height, 720);
}

// -------- Assets / profiles ---------------------------------------------------

TEST(Asset, GenreSuiteHasFiveDistinctGenres) {
  const auto suite = genre_suite();
  ASSERT_EQ(suite.size(), 5u);
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_NE(suite[i].genre, suite[0].genre);
  }
}

TEST(Asset, NewsIsCheapestToDecode) {
  const auto suite = genre_suite();
  double news = 0.0;
  for (const auto& asset : suite) {
    if (asset.genre == Genre::News) news = asset.complexity;
  }
  for (const auto& asset : suite) {
    if (asset.genre != Genre::News) EXPECT_GT(asset.complexity, news);
  }
}

TEST(PlayerProfile, FootprintOrderingMatchesAppendixB) {
  const auto firefox = PlayerProfile::firefox();
  const auto chrome = PlayerProfile::chrome();
  const auto exo = PlayerProfile::exoplayer();
  EXPECT_GT(firefox.base_heap, chrome.base_heap);
  EXPECT_GT(chrome.base_heap, exo.base_heap);
  const Rung rung{res::k1080p, 60, 12000};
  EXPECT_GT(firefox.decoder_pool_pages(rung), exo.decoder_pool_pages(rung));
}

TEST(PlayerProfile, PoolGrowsWithResolutionAndFps) {
  const auto profile = PlayerProfile::firefox();
  const Rung r240_30{res::k240p, 30, 500};
  const Rung r1080_30{res::k1080p, 30, 8000};
  const Rung r1080_60{res::k1080p, 60, 12000};
  EXPECT_GT(profile.decoder_pool_pages(r1080_30), profile.decoder_pool_pages(r240_30));
  EXPECT_GT(profile.decoder_pool_pages(r1080_60), profile.decoder_pool_pages(r1080_30));
}

TEST(PlayerProfile, DecodeCostScalesWithPixelsAndComplexity) {
  const auto profile = PlayerProfile::firefox();
  const Rung r480{res::k480p, 30, 2500};
  const Rung r1080{res::k1080p, 30, 8000};
  // Pixel-proportional on top of a fixed per-frame floor: the 1080p frame
  // (5x the pixels) costs well over 3x the 480p frame but less than 5x.
  EXPECT_GT(profile.decode_cost_refus(r1080, 1.0), 3.0 * profile.decode_cost_refus(r480, 1.0));
  EXPECT_LT(profile.decode_cost_refus(r1080, 1.0), 5.0 * profile.decode_cost_refus(r480, 1.0));
  EXPECT_GT(profile.decode_cost_refus(r480, 1.2), profile.decode_cost_refus(r480, 1.0));
}

// -------- Session (end-to-end on a mid-range device model) --------------------

struct DeviceFixture {
  sim::Engine engine;
  trace::Tracer tracer;
  sched::Scheduler scheduler;
  storage::StorageDevice storage;
  mem::MemoryManager memory;
  net::Link link;
  proc::ActivityManager am;

  explicit DeviceFixture(std::int64_t ram_mb = 2048, double freq = 2.3, std::size_t cores = 4)
      : scheduler(engine, tracer, sched_config(cores, freq)),
        storage(engine, scheduler, storage::StorageConfig{}),
        memory(engine, mem_config(ram_mb), scheduler, storage, tracer),
        link(engine, net::LinkConfig{}),
        am(memory) {}

  static sched::SchedulerConfig sched_config(std::size_t cores, double freq) {
    sched::SchedulerConfig config;
    config.cores = std::vector<sched::CoreConfig>(cores, sched::CoreConfig{freq});
    return config;
  }
  static mem::MemoryConfig mem_config(std::int64_t ram_mb) {
    mem::MemoryConfig config;
    config.total = pages_from_mb(ram_mb);
    config.kernel_reserved = pages_from_mb(ram_mb / 5);
    config.zram_capacity = pages_from_mb(ram_mb / 2);
    config.watermark_min = pages_from_mb(8);
    config.watermark_low = pages_from_mb(24 + ram_mb / 64);
    config.watermark_high = pages_from_mb(40 + ram_mb / 48);
    return config;
  }
};

SessionConfig session_config(int height, int fps, int duration_s = 20) {
  SessionConfig config;
  config.asset = dubai_flow_motion(duration_s);
  config.ladder = BitrateLadder::youtube();
  config.initial_rung = *config.ladder.find(height, fps);
  config.seed = 7;
  return config;
}

TEST(VideoSession, PlaysCleanlyAtLowResolutionWithoutPressure) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(480, 30));
  bool finished = false;
  session.start(fx.am.next_pid(), [&] { finished = true; });
  fx.engine.run_until(sec(40));

  EXPECT_TRUE(finished);
  EXPECT_FALSE(session.metrics().crashed);
  // 20 s at 30 FPS = 600 frames, nearly all presented.
  EXPECT_GT(session.metrics().frames_presented, 550);
  EXPECT_LT(session.metrics().drop_rate(), 0.03);
}

TEST(VideoSession, FrameAccountingCoversWholeVideo) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(360, 30));
  session.start(fx.am.next_pid());
  fx.engine.run_until(sec(40));
  const auto& metrics = session.metrics();
  EXPECT_EQ(metrics.frames_presented + metrics.frames_dropped, 20 * 30);
}

TEST(VideoSession, PssGrowsWithResolution) {
  auto run_pss = [](int height, int fps) {
    DeviceFixture fx;
    fx.am.boot(1.0, 8);
    VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                         session_config(height, fps));
    session.start(fx.am.next_pid());
    fx.engine.run_until(sec(40));
    return session.metrics().pss_mb.max();
  };
  const double pss_240 = run_pss(240, 30);
  const double pss_1080 = run_pss(1080, 30);
  const double pss_1080_60 = run_pss(1080, 60);
  EXPECT_GT(pss_1080, pss_240 + 50.0);
  EXPECT_GT(pss_1080_60, pss_1080);
}

TEST(VideoSession, SlowDeviceDropsFramesAtHighResolution) {
  // Entry-level device (1 GB, 4x1.1 GHz) at 1080p60: decode alone cannot
  // hold the deadline schedule.
  DeviceFixture fx(1024, 1.1, 4);
  fx.am.boot(0.7, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(1080, 60));
  session.start(fx.am.next_pid());
  fx.engine.run_until(sec(60));
  EXPECT_GT(session.metrics().drop_rate(), 0.3);
}

TEST(VideoSession, RungHistoryRecordsSwitches) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  SessionConfig config = session_config(720, 60);
  std::vector<ScheduledAbr::Step> steps;
  steps.push_back({0, *config.ladder.find(720, 60)});
  steps.push_back({2, *config.ladder.find(480, 24)});
  ScheduledAbr abr(steps);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer, config, &abr);
  session.start(fx.am.next_pid());
  fx.engine.run_until(sec(40));
  const auto& history = session.metrics().rung_history;
  ASSERT_GE(history.size(), 3u);
  EXPECT_EQ(history[0].fps, 60);
  EXPECT_EQ(history[2].fps, 24);
  EXPECT_EQ(history[2].resolution.height, 480);
}

TEST(VideoSession, CrashUnderExtremePressureCountsRemainderDropped) {
  DeviceFixture fx(1024, 1.1, 4);
  fx.am.boot(0.7, 6);
  // Unkillable hog grabs almost everything; the video client becomes the
  // only foreground-eligible victim.
  fx.memory.register_process(500, "mp_simulator", mem::OomAdj::kForeground);
  fx.memory.registry().set_killable(500, false);
  fx.memory.alloc_anon(500, pages_from_mb(900), 0, [](bool) {});

  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(720, 60, 30));
  bool finished = false;
  session.start(fx.am.next_pid(), [&] { finished = true; });
  fx.engine.run_until(sec(90));
  EXPECT_TRUE(finished);
  EXPECT_TRUE(session.metrics().crashed);
  // Played frames are few: the session died early under extreme pressure.
  EXPECT_LT(session.metrics().frames_presented, 30 * 60);
}

TEST(VideoSession, ClientThreadsAreTraced) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(480, 30));
  session.start(fx.am.next_pid());
  fx.engine.run_until(sec(40));
  fx.tracer.finalize(fx.engine.now());

  const auto times = trace::state_times(fx.tracer, session.client_thread_ids());
  EXPECT_GT(times.running, 0.0);
  const auto* mc = fx.tracer.thread(session.mediacodec_tid());
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->name, "MediaCodec");
  const auto* sf = fx.tracer.thread(session.surfaceflinger_tid());
  ASSERT_NE(sf, nullptr);
  EXPECT_EQ(sf->process_name, "surfaceflinger");
}

TEST(VideoSession, CompositorThreadParticipatesInPipeline) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(720, 60));
  session.start(fx.am.next_pid());
  fx.engine.run_until(sec(40));
  fx.tracer.finalize(fx.engine.now());
  const auto* meta = fx.tracer.thread(session.compositor_tid());
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->name, "Compositor");
  const auto times = trace::state_times(fx.tracer, {session.compositor_tid()});
  EXPECT_GT(times.running, 0.0);  // it composed every presented frame
}

TEST(VideoSession, ClientThreadListHasThreeAppThreads) {
  DeviceFixture fx;
  fx.am.boot(1.0, 8);
  VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                       session_config(240, 30));
  session.start(fx.am.next_pid());
  const auto tids = session.client_thread_ids();
  EXPECT_EQ(tids.size(), 3u);  // player main, MediaCodec, Compositor
}

TEST(VideoSession, DeterministicForSameSeed) {
  auto run_once = [] {
    DeviceFixture fx(1024, 1.1, 4);
    fx.am.boot(0.7, 8);
    VideoSession session(fx.engine, fx.scheduler, fx.memory, fx.link, fx.tracer,
                         session_config(1080, 30));
    session.start(fx.am.next_pid());
    fx.engine.run_until(sec(60));
    return session.metrics().frames_dropped;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mvqoe::video
