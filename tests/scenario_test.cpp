// Scenario/workload model tests (DESIGN.md §11): the declarative spec
// round-trips through the SCEN section (v2, with v1 back-compat), the
// single-video scenario sweep reproduces the legacy sweep bit for bit,
// multi-session contention scenarios replay deterministically with
// per-session QoE attribution, the contention grid is --jobs invariant,
// and the component registry rejects section-tag collisions.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "runner/scenario_batch.hpp"
#include "scenario/driver.hpp"
#include "scenario/spec.hpp"
#include "snapshot/replay/record.hpp"

namespace mvqoe::scenario {
namespace {

using sim::sec;

ScenarioSpec two_session_spec(int duration_s = 8, std::uint64_t seed = 31) {
  ScenarioSpec scen = single_video("fig16", 480, 30, duration_s,
                                   mem::PressureLevel::Moderate, seed);
  VideoWorkloadSpec second = video_spec(scen, 0);
  second.label = "video1";
  second.seed = runner::contention_session_seed(seed, 1);
  scen.workloads.emplace_back(std::move(second));
  return scen;
}

TEST(ScenarioSpec, SingleVideoMapsLegacyTupleOntoOneWorkload) {
  const ScenarioSpec scen =
      single_video("fig18", 720, 60, 30, mem::PressureLevel::Critical, 9);
  EXPECT_EQ(video_count(scen), 1u);
  const VideoWorkloadSpec& video = video_spec(scen, 0);
  EXPECT_EQ(video.height, 720);
  EXPECT_EQ(video.fps, 60);
  EXPECT_EQ(video.duration_s, 30);
  EXPECT_EQ(video.seed, 9u);  // video stream follows the scenario seed
  EXPECT_EQ(platform_for(scen, video), video::PlayerPlatform::ExoPlayer);
  EXPECT_EQ(device_for(scen).name, core::nexus5().name);
}

TEST(ScenarioSpec, ScenSectionV2RoundTripsWorkloadLists) {
  ScenarioSpec scen = two_session_spec(12, 77);
  scen.organic_background_apps = 4;
  scen.run_watchdog = true;
  scen.world_seed = 123;
  PressureWorkloadSpec hog;
  hog.label = "hog";
  hog.target = mem::PressureLevel::Critical;
  scen.workloads.emplace_back(hog);
  BackgroundAppsWorkloadSpec apps;
  apps.label = "cohort";
  apps.count = 3;
  scen.workloads.emplace_back(apps);

  snapshot::ByteWriter w;
  save_scenario(w, scen);
  const std::string bytes = std::move(w).take();
  snapshot::ByteReader r(bytes);
  const ScenarioSpec loaded = load_scenario(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded.family, scen.family);
  EXPECT_EQ(loaded.organic_background_apps, 4);
  EXPECT_TRUE(loaded.run_watchdog);
  ASSERT_TRUE(loaded.world_seed.has_value());
  EXPECT_EQ(*loaded.world_seed, 123u);
  ASSERT_EQ(loaded.workloads.size(), 4u);
  EXPECT_EQ(video_count(loaded), 2u);
  EXPECT_EQ(video_spec(loaded, 1).label, "video1");
  EXPECT_EQ(video_spec(loaded, 1).seed, video_spec(scen, 1).seed);
  const auto& loaded_hog = std::get<PressureWorkloadSpec>(loaded.workloads[2]);
  EXPECT_EQ(loaded_hog.label, "hog");
  EXPECT_EQ(loaded_hog.target, mem::PressureLevel::Critical);
  const auto& loaded_apps = std::get<BackgroundAppsWorkloadSpec>(loaded.workloads[3]);
  EXPECT_EQ(loaded_apps.count, 3);
}

// Back-compat: a v1 SCEN section (the legacy single-video tuple, as
// found in pre-v2 blobs like tests/data/golden_fig16.blob) must load
// into the equivalent one-workload scenario.
TEST(ScenarioSpec, ScenSectionV1StillLoads) {
  snapshot::ByteWriter w;
  w.u32(1);  // legacy section version
  w.str("fig11");
  w.i32(360);
  w.i32(30);
  w.i32(16);
  w.u8(static_cast<std::uint8_t>(mem::PressureLevel::Moderate));
  w.u64(41);
  fault::FaultPlan plan;
  plan.link_outages.push_back({sec(2), sec(1)});
  save_fault_plan(w, plan);

  const std::string bytes = std::move(w).take();
  snapshot::ByteReader r(bytes);
  const ScenarioSpec loaded = load_scenario(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded.family, "fig11");
  EXPECT_EQ(loaded.state, mem::PressureLevel::Moderate);
  EXPECT_EQ(loaded.seed, 41u);
  ASSERT_EQ(video_count(loaded), 1u);
  const VideoWorkloadSpec& video = video_spec(loaded, 0);
  EXPECT_EQ(video.height, 360);
  EXPECT_EQ(video.fps, 30);
  EXPECT_EQ(video.duration_s, 16);
  EXPECT_EQ(video.seed, 41u);
  ASSERT_EQ(video.fault_plan.link_outages.size(), 1u);
  EXPECT_EQ(video.fault_plan.link_outages[0].at, sec(2));
}

TEST(ScenarioSpec, SaveRejectsRuntimeOnlyKnobs) {
  ScenarioSpec custom;
  custom.family.clear();
  custom.device_override = core::nokia1();
  custom.workloads.emplace_back(VideoWorkloadSpec{});
  snapshot::ByteWriter w;
  EXPECT_THROW(save_scenario(w, custom), std::invalid_argument);

  ScenarioSpec with_asset = single_video("fig16", 480, 30, 8,
                                         mem::PressureLevel::Normal, 1);
  video_spec(with_asset, 0).asset_override = video::dubai_flow_motion(8);
  EXPECT_THROW(save_scenario(w, with_asset), std::invalid_argument);
}

// The refactor's byte-identity contract: a single-video ScenarioSpec
// proto on the scenario sweep must reproduce the legacy VideoRunSpec
// sweep bit for bit (same seeds, same cells, same JSON payload).
TEST(ScenarioSweep, SingleVideoProtoMatchesLegacySweepByteForByte) {
  const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal,
                                                  mem::PressureLevel::Moderate};
  const std::vector<int> fps = {30};
  const std::vector<int> heights = {360, 480};
  const int runs = 2;
  const std::uint64_t base_seed = 900;

  core::VideoRunSpec legacy;
  legacy.device = core::nokia1();
  legacy.asset = video::dubai_flow_motion(8);
  const auto old_grid =
      runner::run_sweep_grid(legacy, states, fps, heights, runs, 1, base_seed);

  ScenarioSpec proto;
  proto.family.clear();
  proto.device_override = core::nokia1();
  VideoWorkloadSpec video;
  video.duration_s = 8;
  proto.workloads.emplace_back(std::move(video));
  const auto new_grid =
      runner::run_scenario_sweep_grid(proto, states, fps, heights, runs, 1, base_seed);

  EXPECT_EQ(runner::sweep_json("identity", old_grid, runs, 1, base_seed),
            runner::sweep_json("identity", new_grid, runs, 1, base_seed));
}

// Two concurrent sessions, replayed twice: identical per-session digests
// and per-session results. This is the determinism contract extended to
// multi-session worlds.
TEST(Contention, TwoSessionsReplayDigestIdentical) {
  const ScenarioSpec scen = two_session_spec();
  auto run_once = [&] {
    ScenarioDriver driver(scen);
    driver.prepare();
    driver.start();
    while (driver.advance_slice()) {
    }
    return std::make_pair(driver.subsystem_digests(), driver.finalize());
  };
  const auto [digests_a, result_a] = run_once();
  const auto [digests_b, result_b] = run_once();

  ASSERT_EQ(digests_a.size(), digests_b.size());
  for (std::size_t i = 0; i < digests_a.size(); ++i) {
    EXPECT_EQ(digests_a[i].second, digests_b[i].second) << digests_a[i].first;
  }
  // Both video sessions (and their digests) are registry components.
  bool saw_video1 = false;
  for (const auto& [name, digest] : digests_a) saw_video1 |= name == "video1";
  EXPECT_TRUE(saw_video1);

  ASSERT_EQ(result_a.sessions.size(), 2u);
  EXPECT_EQ(result_a.sessions[0].label, "video");
  EXPECT_EQ(result_a.sessions[1].label, "video1");
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(result_a.sessions[k].result.outcome.drop_rate,
              result_b.sessions[k].result.outcome.drop_rate);
    EXPECT_EQ(result_a.sessions[k].result.outcome.mean_pss_mb,
              result_b.sessions[k].result.outcome.mean_pss_mb);
    EXPECT_GT(result_a.sessions[k].result.metrics.frames_presented +
                  result_a.sessions[k].result.metrics.frames_dropped,
              0);
  }
}

// Record/verify across the blob: a two-session scenario records with
// VID1 (and SCEN v2) sections and replays digest-identical end to end.
TEST(Contention, TwoSessionBlobRecordsAndVerifies) {
  const ScenarioSpec scen = two_session_spec();
  const snapshot::Snapshot blob = snapshot::replay::record_run(scen, {sec(4), std::nullopt});
  EXPECT_TRUE(blob.has(snapshot::tag("VIDE")));
  EXPECT_TRUE(blob.has(snapshot::tag("VID1")));

  const auto report = snapshot::replay::verify_replay(blob);
  EXPECT_TRUE(report.ok) << snapshot::replay::format_report(report);
}

// --jobs invariance for the contention grid: parallel equals serial
// byte-for-byte on the JSON payload (per-session aggregates included).
TEST(Contention, GridParallelMatchesSerialByteForByte) {
  ScenarioSpec proto = single_video("fig16", 360, 30, 6,
                                    mem::PressureLevel::Normal, 1);
  const std::vector<int> session_counts = {1, 2};
  const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal,
                                                  mem::PressureLevel::Moderate};
  const int runs = 2;
  const std::uint64_t base_seed = 400;

  const auto serial =
      runner::run_contention_grid(proto, session_counts, states, runs, 1, base_seed);
  const auto parallel =
      runner::run_contention_grid(proto, session_counts, states, runs, 4, base_seed);
  ASSERT_EQ(serial.size(), 4u);
  for (const auto& cell : serial) EXPECT_EQ(cell.failures, 0u);
  EXPECT_EQ(runner::contention_json("identity", serial, runs, 1, base_seed),
            runner::contention_json("identity", parallel, runs, 1, base_seed));

  // Per-session attribution: the 2-session cells report video0 and
  // video1 separately, each with `runs` outcomes.
  const auto& two = serial.back();
  ASSERT_EQ(two.sessions, 2);
  ASSERT_EQ(two.breakdown.entries().size(), 2u);
  EXPECT_EQ(two.breakdown.entries()[0].first, "video0");
  EXPECT_EQ(two.breakdown.entries()[1].first, "video1");
  EXPECT_NE(two.breakdown.find("video1"), nullptr);
  EXPECT_EQ(two.breakdown.entries()[0].second.runs(), static_cast<std::size_t>(runs));
}

TEST(Contention, SeedSchemeIsCollisionFreeAcrossSessionsAndCells) {
  const auto c1 = runner::contention_cell_seed(7, 1, mem::PressureLevel::Normal);
  const auto c2 = runner::contention_cell_seed(7, 2, mem::PressureLevel::Normal);
  const auto c3 = runner::contention_cell_seed(7, 1, mem::PressureLevel::Moderate);
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_NE(runner::contention_session_seed(c1, 0), runner::contention_session_seed(c1, 1));
  EXPECT_NE(runner::contention_session_seed(c1, 0), runner::contention_session_seed(c2, 0));
}

TEST(Registry, DuplicateSectionTagFailsLoudly) {
  core::ComponentRegistry registry;
  registry.add(0, snapshot::tag("ENGN"), "engine", [](snapshot::ByteWriter&) {},
               [] { return 1ULL; });
  EXPECT_THROW(registry.add(1, snapshot::tag("ENGN"), "engine2",
                            [](snapshot::ByteWriter&) {}, [] { return 2ULL; }),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.has(snapshot::tag("ENGN")));
}

// More than 10 video sessions would collide in the 4-char tag space —
// the workload ctor refuses instead of silently reusing a tag.
TEST(Registry, MoreThanTenSessionsOfOneKindRejected) {
  ScenarioSpec scen = single_video("fig16", 240, 30, 4, mem::PressureLevel::Normal, 1);
  for (int k = 1; k <= 10; ++k) {
    VideoWorkloadSpec extra = video_spec(scen, 0);
    extra.label = "video" + std::to_string(k);
    scen.workloads.emplace_back(std::move(extra));
  }
  EXPECT_THROW(ScenarioDriver driver(scen), std::invalid_argument);
}

}  // namespace
}  // namespace mvqoe::scenario
