// Scheduler edge cases: RT work stealing, affinity interactions,
// termination while queued, heterogeneous cores, and accounting totals.
#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "trace/analysis.hpp"

namespace mvqoe::sched {
namespace {

using sim::msec;
using sim::sec;

struct Fixture {
  sim::Engine engine;
  trace::Tracer tracer;
};

SchedulerConfig cores(std::initializer_list<double> freqs) {
  SchedulerConfig config;
  for (const double f : freqs) config.cores.push_back(CoreConfig{f});
  config.context_switch_cost_refus = 0.0;
  config.migration_cost_refus = 0.0;
  return config;
}

ThreadSpec fair(const std::string& name, ProcessId pid = 100) {
  ThreadSpec spec;
  spec.name = name;
  spec.pid = pid;
  return spec;
}

ThreadSpec rt(const std::string& name, int prio) {
  ThreadSpec spec;
  spec.name = name;
  spec.pid = 1;
  spec.sched_class = SchedClass::Realtime;
  spec.priority = prio;
  return spec;
}

TEST(SchedEdge, HeterogeneousCoresPreferFasterIdleCore) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0, 2.0}));
  const auto tid = sched.create_thread(fair("t"));
  sim::Time done = -1;
  sched.run_work(tid, 10000.0, [&] { done = fx.engine.now(); });
  fx.engine.run();
  EXPECT_EQ(done, msec(5));  // ran on the 2 GHz core
}

TEST(SchedEdge, QueuedRtThreadStolenByIdleCore) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0, 1.0}));
  // Two RT threads at equal priority queue behind each other on one
  // core; when the other core frees up, the waiter migrates to it.
  const auto blocker = sched.create_thread(fair("blocker"));
  const auto rt1 = sched.create_thread(rt("rt1", 50));
  const auto rt2 = sched.create_thread(rt("rt2", 50));
  sched.run_work(blocker, 3000.0, [] {});  // occupies core briefly
  sim::Time rt1_done = -1;
  sim::Time rt2_done = -1;
  sched.run_work(rt1, 20000.0, [&] { rt1_done = fx.engine.now(); });
  sched.run_work(rt2, 20000.0, [&] { rt2_done = fx.engine.now(); });
  fx.engine.run();
  // Both finish around 20-23ms: they ended up on different cores rather
  // than serializing for 40ms.
  EXPECT_LE(std::max(rt1_done, rt2_done), msec(25));
}

TEST(SchedEdge, AffinityPinnedThreadWaitsForItsCore) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0, 1.0}));
  const auto hog = sched.create_thread(fair("hog"));
  // Pin the hog and the pinned thread to core 0.
  sched.set_affinity(hog, 0b01);
  ThreadSpec pinned_spec = fair("pinned");
  pinned_spec.affinity = 0b01;
  const auto pinned = sched.create_thread(pinned_spec);
  sched.run_work(hog, 20000.0, [] {});
  sim::Time done = -1;
  sched.run_work(pinned, 1000.0, [&] { done = fx.engine.now(); });
  fx.engine.run();
  // Core 1 is idle the whole time but the pinned thread may not use it:
  // it must share core 0 (timeslicing), finishing well after 1 ms.
  EXPECT_GT(done, msec(3));
}

TEST(SchedEdge, TerminateQueuedThreadNeverRuns) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0}));
  const auto hog = sched.create_thread(fair("hog"));
  const auto victim = sched.create_thread(fair("victim"));
  bool ran = false;
  sched.run_work(hog, 50000.0, [] {});
  sched.run_work(victim, 1000.0, [&] { ran = true; });
  sched.terminate(victim);  // still queued, never dispatched
  fx.engine.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sched.exists(victim));
}

TEST(SchedEdge, TerminateIsIdempotent) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0}));
  const auto tid = sched.create_thread(fair("t"));
  sched.terminate(tid);
  sched.terminate(tid);  // no-op, no crash
  EXPECT_FALSE(sched.exists(tid));
}

TEST(SchedEdge, RtPreemptionRecordAcrossMultipleVictims) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0, 1.0}));
  const auto a = sched.create_thread(fair("a"));
  const auto b = sched.create_thread(fair("b"));
  const auto daemon = sched.create_thread(rt("mmcqd", 50));
  sched.run_work(a, 100000.0, [] {});
  sched.run_work(b, 100000.0, [] {});
  // Two wakeups: each preempts whichever fair thread occupies the chosen
  // core at the time.
  std::function<void()> fire = [&] {
    sched.run_work(daemon, 500.0, [&] {
      sched.sleep_for(daemon, msec(10), [&] {
        if (fx.engine.now() < msec(50)) fire();
      });
    });
  };
  fx.engine.schedule(msec(5), fire);
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());
  const auto stats_a = trace::preemption_stats(fx.tracer, {a}, "mmcqd");
  const auto stats_b = trace::preemption_stats(fx.tracer, {b}, "mmcqd");
  EXPECT_GT(stats_a.count + stats_b.count, 2u);
}

TEST(SchedEdge, CountersAccumulateCpuTime) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({2.0}));
  const auto tid = sched.create_thread(fair("t"));
  sched.run_work(tid, 10000.0, [] {});
  fx.engine.run();
  EXPECT_NEAR(sched.counters(tid).cpu_refus_consumed, 10000.0, 1.0);
}

TEST(SchedEdge, ZeroWorkBurstCompletesImmediately) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0}));
  const auto tid = sched.create_thread(fair("t"));
  bool done = false;
  sched.run_work(tid, 0.0, [&] { done = true; });
  fx.engine.run();
  EXPECT_TRUE(done);
  EXPECT_LE(fx.engine.now(), msec(1));
}

TEST(SchedEdge, ManyThreadsOnManyCoresAccountingCloses) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, cores({1.0, 1.0, 1.3, 1.3}));
  double submitted = 0.0;
  for (int i = 0; i < 24; ++i) {
    const auto tid = sched.create_thread(fair("w" + std::to_string(i)));
    const double work = 1000.0 * (i + 1);
    submitted += work;
    sched.run_work(tid, work, [] {});
  }
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());
  // Total consumed CPU (ref-µs) equals total submitted work exactly
  // (no switch costs in this config).
  double consumed = 0.0;
  for (trace::ThreadId tid = 1; tid <= 24; ++tid) {
    consumed += sched.counters(tid).cpu_refus_consumed;
  }
  EXPECT_NEAR(consumed, submitted, 24 * 0.2);
}

}  // namespace
}  // namespace mvqoe::sched
