// Tests for the thread-pool batch experiment runner: the determinism
// contract (parallel == serial, byte for byte, in run-index order under
// any completion schedule), structured per-run failure isolation, the
// sweep-seed derivation regression (the old additive bench formula let
// distinct cells alias to one seed), and the JSON emission layer.
#include <gtest/gtest.h>

#include <chrono>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "runner/batch.hpp"
#include "runner/json_writer.hpp"
#include "runner/video_batch.hpp"
#include "stats/rng.hpp"

namespace mvqoe::runner {
namespace {

TEST(ResolveJobs, ExplicitRequestWins) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
}

TEST(ResolveJobs, EnvironmentFallback) {
  ::setenv("MVQOE_JOBS", "7", 1);
  EXPECT_EQ(resolve_jobs(0), 7);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit still wins
  ::unsetenv("MVQOE_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);  // hardware fallback is always >= 1
}

TEST(ResolveJobs, ArgvParsing) {
  const char* argv1[] = {"bench", "--jobs", "4"};
  EXPECT_EQ(jobs_from_args(3, const_cast<char**>(argv1)), 4);
  const char* argv2[] = {"bench", "--jobs=6"};
  EXPECT_EQ(jobs_from_args(2, const_cast<char**>(argv2)), 6);
  const char* argv3[] = {"bench", "positional"};
  EXPECT_GE(jobs_from_args(2, const_cast<char**>(argv3)), 1);
}

TEST(RunBatch, ResultsInIndexOrder) {
  const auto batch = run_batch(std::size_t{32}, 4, [](std::size_t i) { return i * i; });
  EXPECT_EQ(batch.failures, 0u);
  ASSERT_EQ(batch.runs.size(), 32u);
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    EXPECT_TRUE(batch.runs[i].ok);
    EXPECT_EQ(batch.runs[i].index, i);
    EXPECT_EQ(batch.runs[i].value, i * i);
  }
}

// Adversarial completion schedule: early runs sleep longest, so workers
// finish in roughly reverse index order. The reduction must still come
// back in index order with values identical to the serial pass.
TEST(RunBatch, DeterministicUnderAdversarialSlowWorkerSchedule) {
  auto task = [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds((16 - i) * 3));
    stats::Rng rng(stats::derive_seed(99, i + 1));
    return rng.next();
  };
  const auto serial = run_batch(std::size_t{16}, 1, task);
  const auto parallel = run_batch(std::size_t{16}, 8, task);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(serial.jobs_used, 1);
  EXPECT_GT(parallel.jobs_used, 1);
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(parallel.runs[i].index, i);
    EXPECT_EQ(serial.runs[i].value, parallel.runs[i].value) << "run " << i;
  }
}

TEST(RunBatch, ExceptionInOneRunIsIsolated) {
  const auto batch = run_batch(std::size_t{8}, 4, [](std::size_t i) -> int {
    if (i == 3) throw std::runtime_error("injected failure in run 3");
    return static_cast<int>(i) + 1;
  });
  EXPECT_EQ(batch.failures, 1u);
  EXPECT_FALSE(batch.all_ok());
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(batch.runs[i].ok);
      EXPECT_EQ(batch.runs[i].error, "injected failure in run 3");
    } else {
      EXPECT_TRUE(batch.runs[i].ok);
      EXPECT_EQ(batch.runs[i].value, static_cast<int>(i) + 1);
    }
  }
}

TEST(RunBatch, NonStdExceptionIsStructured) {
  const auto batch = run_batch(std::size_t{2}, 2, [](std::size_t i) -> int {
    if (i == 1) throw 42;  // not derived from std::exception
    return 0;
  });
  EXPECT_EQ(batch.failures, 1u);
  EXPECT_EQ(batch.runs[1].error, "unknown exception");
}

TEST(RunBatch, EmptyBatch) {
  const auto batch = run_batch(std::size_t{0}, 4, [](std::size_t) { return 1; });
  EXPECT_TRUE(batch.runs.empty());
  EXPECT_TRUE(batch.all_ok());
}

// Regression for the old bench seeding (`1000 + height + fps + state*7`):
// distinct (height, fps, state) tuples alias to the same seed — e.g.
// (240, 67, Normal) and (240, 60, Moderate) — correlating cells that the
// paper's methodology requires to be independent. The derive_seed-based
// cell seeds must be pairwise distinct across a grid far larger than any
// bench uses.
TEST(SweepSeeds, OldAdditiveFormulaCollides) {
  const auto old_formula = [](int height, int fps, int state) {
    return 1000 + height + fps + state * 7;
  };
  EXPECT_EQ(old_formula(240, 67, 0), old_formula(240, 60, 1));
  EXPECT_EQ(old_formula(727, 30, 0), old_formula(720, 30, 1));
  EXPECT_NE(sweep_cell_seed(1000, 240, 67, static_cast<mem::PressureLevel>(0)),
            sweep_cell_seed(1000, 240, 60, static_cast<mem::PressureLevel>(1)));
  EXPECT_NE(sweep_cell_seed(1000, 727, 30, static_cast<mem::PressureLevel>(0)),
            sweep_cell_seed(1000, 720, 30, static_cast<mem::PressureLevel>(1)));
}

TEST(SweepSeeds, PairwiseDistinctAcrossBroadGrid) {
  std::unordered_set<std::uint64_t> seeds;
  std::size_t cells = 0;
  for (int height = 144; height <= 2160; height += 8) {
    for (int fps = 24; fps <= 120; fps += 4) {
      for (int state = 0; state < 4; ++state) {
        seeds.insert(sweep_cell_seed(1000, height, fps, static_cast<mem::PressureLevel>(state)));
        ++cells;
      }
    }
  }
  EXPECT_EQ(seeds.size(), cells);
  // Per-run seeds inside a cell must not collide with other cells' runs.
  std::unordered_set<std::uint64_t> run_seeds;
  std::size_t runs = 0;
  for (const int height : {240, 360, 480, 720, 1080}) {
    for (const int fps : {30, 60}) {
      for (int state = 0; state < 4; ++state) {
        const std::uint64_t cell =
            sweep_cell_seed(1000, height, fps, static_cast<mem::PressureLevel>(state));
        for (std::uint64_t run = 1; run <= 10; ++run) {
          run_seeds.insert(stats::derive_seed(cell, run));
          ++runs;
        }
      }
    }
  }
  EXPECT_EQ(run_seeds.size(), runs);
}

TEST(SweepSeeds, DistinctAcrossBaseSeeds) {
  EXPECT_NE(sweep_cell_seed(1, 720, 30, mem::PressureLevel::Normal),
            sweep_cell_seed(2, 720, 30, mem::PressureLevel::Normal));
}

TEST(JsonWriter, ObjectsArraysAndEscapes) {
  JsonWriter w;
  w.begin_object()
      .field("name", "a\"b\\c\nd")
      .field("count", 3)
      .field("ratio", 0.5)
      .field("flag", true);
  w.key("xs").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().field("inner", 7).end_object();
  w.key("nothing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":3,\"ratio\":0.5,\"flag\":true,"
            "\"xs\":[1,2,3],\"nested\":{\"inner\":7},\"nothing\":null}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).value(1.5).end_array();
  EXPECT_EQ(w.str(), "[null,1.5]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter w;
  const double value = 0.12345678901234567;
  w.begin_array().value(value).end_array();
  const std::string s = w.str();
  EXPECT_EQ(std::strtod(s.c_str() + 1, nullptr), value);
}

TEST(JsonWriter, LocaleIndependentDoubles) {
  // A decimal-comma locale must not leak into the JSON: "[1,5]" instead
  // of "[1.5]" silently changes both the schema and the bytes the
  // determinism contract (DESIGN.md §9) and golden-digest tests hash.
  const std::string reference = [] {
    JsonWriter w;
    w.begin_array().value(1.5).value(0.12345678901234567).value(1e-9).value(-2.75e20).end_array();
    return w.str();
  }();
  EXPECT_NE(reference.find("1.5"), std::string::npos);

  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const char* de = std::setlocale(LC_ALL, "de_DE.UTF-8");
  if (de == nullptr) de = std::setlocale(LC_ALL, "de_DE.utf8");
  if (de == nullptr) de = std::setlocale(LC_NUMERIC, "de_DE");
  if (de == nullptr) {
    GTEST_SKIP() << "no de_DE-style locale available on this system";
  }
  // Only meaningful if the locale really uses a decimal comma.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 1.5);
  const bool comma_locale = std::string(probe).find(',') != std::string::npos;

  JsonWriter w;
  w.begin_array().value(1.5).value(0.12345678901234567).value(1e-9).value(-2.75e20).end_array();
  const std::string under_locale = w.str();
  std::setlocale(LC_ALL, saved.c_str());

  if (!comma_locale) GTEST_SKIP() << "locale accepted but uses a decimal point";
  EXPECT_EQ(under_locale, reference);
  EXPECT_EQ(under_locale.find(','), reference.find(','));  // array commas only
}

// Full-precision serialization of every per-run result: the byte string
// the parallel path must reproduce exactly.
std::string dump_runs(const std::vector<RunSlot<core::VideoRunResult>>& runs) {
  JsonWriter w;
  w.begin_array();
  for (const auto& slot : runs) {
    w.begin_object()
        .field("index", slot.index)
        .field("ok", slot.ok)
        .field("frames_presented", slot.value.metrics.frames_presented)
        .field("frames_dropped", slot.value.metrics.frames_dropped)
        .field("rebuffers", slot.value.metrics.rebuffer_events)
        .field("status", core::to_string(slot.value.status));
    w.key("outcome");
    write_run_outcome(w, slot.value.outcome);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

core::VideoRunSpec small_video_spec() {
  core::VideoRunSpec spec;
  spec.device = core::nexus5();
  spec.height = 480;
  spec.fps = 30;
  spec.pressure = mem::PressureLevel::Normal;
  spec.asset = video::dubai_flow_motion(6);
  spec.seed = 77;
  return spec;
}

TEST(VideoBatch, ParallelMatchesSerialByteIdentical) {
  const core::VideoRunSpec spec = small_video_spec();
  const auto serial = run_video_batch(spec, 4, 1);
  const auto parallel = run_video_batch(spec, 4, 4);
  EXPECT_EQ(serial.jobs_used, 1);
  EXPECT_EQ(serial.failures, 0u);
  EXPECT_EQ(parallel.failures, 0u);
  EXPECT_EQ(dump_runs(serial.runs), dump_runs(parallel.runs));
}

TEST(VideoBatch, MatchesLegacySerialHelper) {
  const core::VideoRunSpec spec = small_video_spec();
  const auto batch = run_video_batch(spec, 3, 4);
  const auto legacy = core::run_video_repeated(spec, 3);
  ASSERT_EQ(batch.aggregate.runs(), legacy.runs());
  for (std::size_t i = 0; i < legacy.runs(); ++i) {
    JsonWriter a;
    write_run_outcome(a, batch.aggregate.outcomes()[i]);
    JsonWriter b;
    write_run_outcome(b, legacy.outcomes()[i]);
    EXPECT_EQ(a.str(), b.str()) << "run " << i;
  }
}

TEST(VideoBatch, SweepGridParallelMatchesSerial) {
  core::VideoRunSpec proto = small_video_spec();
  const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal};
  const std::vector<int> fps = {30};
  const std::vector<int> heights = {360, 480};
  const auto serial = run_sweep_grid(proto, states, fps, heights, 2, 1, 1000);
  const auto parallel = run_sweep_grid(proto, states, fps, heights, 2, 4, 1000);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(serial[c].height, parallel[c].height);
    EXPECT_EQ(serial[c].cell_seed, parallel[c].cell_seed);
    ASSERT_EQ(serial[c].aggregate.runs(), parallel[c].aggregate.runs());
    for (std::size_t r = 0; r < serial[c].aggregate.runs(); ++r) {
      JsonWriter a;
      write_run_outcome(a, serial[c].aggregate.outcomes()[r]);
      JsonWriter b;
      write_run_outcome(b, parallel[c].aggregate.outcomes()[r]);
      EXPECT_EQ(a.str(), b.str()) << "cell " << c << " run " << r;
    }
  }
}

TEST(VideoBatch, SweepJsonIsWritten) {
  core::VideoRunSpec proto = small_video_spec();
  const auto cells =
      run_sweep_grid(proto, {mem::PressureLevel::Normal}, {30}, {480}, 1, 2, 1000);
  ::setenv("MVQOE_JSON_DIR", ::testing::TempDir().c_str(), 1);
  const std::string path = write_sweep_json("runner_selftest", cells, 1, 2, 1000);
  ::unsetenv("MVQOE_JSON_DIR");
  ASSERT_FALSE(path.empty());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  const std::size_t n = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  content.resize(n);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"bench\":\"runner_selftest\""), std::string::npos);
  EXPECT_NE(content.find("\"cells\":["), std::string::npos);
  EXPECT_NE(content.find("\"drop_rate_histogram\""), std::string::npos);
}

}  // namespace
}  // namespace mvqoe::runner
