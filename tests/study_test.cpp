#include <gtest/gtest.h>

#include "study/analysis.hpp"

namespace mvqoe::study {
namespace {

TEST(Population, GeneratesRequestedCount) {
  const auto population = generate_population(80, 42);
  EXPECT_EQ(population.size(), 80u);
}

TEST(Population, DeterministicPerSeed) {
  const auto a = generate_population(20, 5);
  const auto b = generate_population(20, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ram_mb, b[i].ram_mb);
    EXPECT_EQ(a[i].manufacturer, b[i].manufacturer);
    EXPECT_DOUBLE_EQ(a[i].interactive_hours, b[i].interactive_hours);
  }
}

TEST(Population, RamRangeMatchesStudy) {
  const auto population = generate_population(200, 42);
  std::int64_t lo = 1 << 20;
  std::int64_t hi = 0;
  for (const auto& device : population) {
    lo = std::min(lo, device.ram_mb);
    hi = std::max(hi, device.ram_mb);
    EXPECT_GE(device.ram_mb, 1024);
    EXPECT_LE(device.ram_mb, 8192);
  }
  EXPECT_EQ(lo, 1024);  // 1 GB to 8 GB, as in the paper
  EXPECT_EQ(hi, 8192);
}

TEST(Population, VideoIsMostFrequentActivity) {
  const auto population = generate_population(200, 42);
  double games = 0.0;
  double music = 0.0;
  double video = 0.0;
  for (const auto& device : population) {
    games += device.user.rating_games;
    music += device.user.rating_music;
    video += device.user.rating_video;
  }
  EXPECT_GT(video, music);
  EXPECT_GT(music, games);
}

TEST(Population, ManufacturerDiversity) {
  const auto population = generate_population(80, 42);
  std::set<std::string> seen;
  for (const auto& device : population) seen.insert(device.manufacturer);
  EXPECT_GE(seen.size(), 10u);  // 12 manufacturers in the paper's study
}

TEST(Population, CleaningRuleKeepsRoughlyHalf) {
  const auto population = generate_population(80, 42);
  int kept = 0;
  for (const auto& device : population) {
    if (device.interactive_hours > 10.0) ++kept;
  }
  // Paper: 48 of 80 devices survived the > 10 h rule.
  EXPECT_GE(kept, 35);
  EXPECT_LE(kept, 70);
}

TEST(DeviceSim, ShortRunProducesSamples) {
  StudyDevice device = generate_population(1, 3)[0];
  device.ram_mb = 2048;
  device.interactive_hours = 0.5;
  const auto result = simulate_device(device, 99);
  EXPECT_NEAR(result.hours_logged, 0.5, 1e-9);
  EXPECT_FALSE(result.utilization_samples.empty());
  EXPECT_GT(result.median_utilization, 0.2);
  EXPECT_LT(result.median_utilization, 1.0);
  double total_seconds = 0.0;
  for (const double s : result.seconds_in_level) total_seconds += s;
  EXPECT_NEAR(total_seconds, 0.5 * 3600.0, 1.0);
}

TEST(DeviceSim, LowRamDeviceSeesPressureSignals) {
  StudyDevice device = generate_population(1, 3)[0];
  device.ram_mb = 1024;
  device.cores = 4;
  device.freq_ghz = 1.2;
  device.interactive_hours = 2.0;
  device.user.rating_video = 5;
  device.user.app_switches_per_minute = 2.0;
  device.user.max_open_apps = 6;
  const auto result = simulate_device(device, 11);
  EXPECT_GT(result.signals[1] + result.signals[2] + result.signals[3], 0u);
  EXPECT_GT(result.fraction_not_normal(), 0.0);
}

TEST(DeviceSim, HighRamDeviceMostlyNormal) {
  StudyDevice device = generate_population(1, 3)[0];
  device.ram_mb = 8192;
  device.cores = 8;
  device.freq_ghz = 2.6;
  device.interactive_hours = 1.0;
  const auto result = simulate_device(device, 12);
  EXPECT_GT(result.fraction_in_level(0), 0.9);
}

TEST(DeviceSim, DeterministicPerSeed) {
  StudyDevice device = generate_population(1, 3)[0];
  device.ram_mb = 1024;
  device.interactive_hours = 0.3;
  const auto a = simulate_device(device, 5);
  const auto b = simulate_device(device, 5);
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_DOUBLE_EQ(a.median_utilization, b.median_utilization);
}

TEST(DeviceSim, CleanDropsShortLogs) {
  std::vector<DeviceStudyResult> results(3);
  results[0].hours_logged = 5.0;
  results[1].hours_logged = 15.0;
  results[2].hours_logged = 50.0;
  const auto kept = clean(std::move(results));
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].hours_logged, 15.0);
}

TEST(Analysis, HeatmapCountsSumToPopulation) {
  const auto population = generate_population(80, 42);
  const auto heatmap = usage_heatmap(population);
  for (int activity = 0; activity < 5; ++activity) {
    int total = 0;
    for (int rating = 0; rating < 5; ++rating) {
      total += heatmap.counts[static_cast<std::size_t>(activity)][static_cast<std::size_t>(rating)];
    }
    EXPECT_EQ(total, 80);
  }
}

TEST(Analysis, SummaryPercentagesBounded) {
  std::vector<DeviceStudyResult> results(4);
  for (auto& result : results) result.hours_logged = 20.0;
  results[0].median_utilization = 0.70;
  results[0].signals[3] = 20 * 15;  // 15 critical/hour
  results[0].seconds_in_level[3] = 20.0 * 3600.0 * 0.6;
  results[1].median_utilization = 0.65;
  results[2].median_utilization = 0.40;
  results[3].median_utilization = 0.80;
  const auto summary = summarize(results);
  EXPECT_EQ(summary.devices, 4u);
  EXPECT_DOUBLE_EQ(summary.percent_median_util_ge_60, 75.0);
  EXPECT_DOUBLE_EQ(summary.percent_median_util_gt_75, 25.0);
  EXPECT_DOUBLE_EQ(summary.percent_with_10_critical_per_hour, 25.0);
  EXPECT_DOUBLE_EQ(summary.percent_time50_high_pressure, 25.0);
}

TEST(Analysis, TransitionPercentRowsSumTo100) {
  std::vector<DeviceStudyResult> results(1);
  auto& result = results[0];
  result.hours_logged = 20.0;
  result.seconds_in_level[3] = 20.0 * 3600.0 * 0.5;
  result.transitions[3][2] = 60;
  result.transitions[3][0] = 40;
  result.dwell_seconds[3] = {5.0, 10.0, 12.0};
  const auto stats = transition_stats(results, 0.3, 1);
  EXPECT_NEAR(stats.percent[3][2], 60.0, 1e-9);
  EXPECT_NEAR(stats.percent[3][0], 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.dwell[3].median, 10.0);
}

TEST(Analysis, ViolinPicksMostPressuredDevices) {
  std::vector<DeviceStudyResult> results(3);
  for (int i = 0; i < 3; ++i) {
    results[static_cast<std::size_t>(i)].device.index = i;
    results[static_cast<std::size_t>(i)].hours_logged = 10.0;
  }
  results[1].seconds_in_level[1] = 10.0 * 3600.0 * 0.4;  // most pressured
  results[1].available_mb_by_state[1] = {100.0, 120.0, 140.0};
  const auto violins = availability_violins(results, 1);
  ASSERT_EQ(violins.size(), 1u);
  EXPECT_EQ(violins[0].device_index, 1);
  EXPECT_EQ(violins[0].by_state[1].box.n, 3u);
}

TEST(Analysis, UtilizationCdfSorted) {
  std::vector<DeviceStudyResult> results(3);
  results[0].median_utilization = 0.7;
  results[1].median_utilization = 0.5;
  results[2].median_utilization = 0.9;
  const auto cdf = utilization_cdf(results);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].value, 0.9);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

}  // namespace
}  // namespace mvqoe::study
