// Snapshot subsystem tests: blob container round-trips, the
// checkpoint/restore round-trip invariant across every scenario family,
// golden-trace regression against a committed blob, divergence
// bisection, and warm-start sweep byte-identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "runner/warm_sweep.hpp"
#include "scenario/spec.hpp"
#include "snapshot/blob.hpp"
#include "snapshot/digest.hpp"
#include "snapshot/replay/record.hpp"

namespace mvqoe::snapshot {
namespace {

using replay::ReplayDriver;
using scenario::ScenarioSpec;
using scenario::single_video;
using sim::sec;

TEST(Blob, RoundTripPreservesSectionsBytesAndDigest) {
  Snapshot snap;
  ByteWriter w;
  w.u32(1);
  w.i64(-42);
  w.f64(0.1);
  w.str("hello");
  snap.put(tag("ENGN"), std::move(w));
  snap.put(tag("XQZW"), std::string("\x01\x00\xff", 3));  // future/unknown section

  const std::string bytes = snap.serialize();
  const Snapshot parsed = Snapshot::parse(bytes);
  ASSERT_EQ(parsed.sections().size(), 2u);
  EXPECT_EQ(parsed.sections()[0].tag, tag("ENGN"));
  EXPECT_EQ(parsed.sections()[1].tag, tag("XQZW"));
  EXPECT_EQ(parsed.sections()[1].bytes, std::string("\x01\x00\xff", 3));
  EXPECT_EQ(parsed.digest(), snap.digest());
  EXPECT_EQ(parsed.serialize(), bytes);

  ByteReader r(parsed.require(tag("ENGN")));
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Blob, ParseRejectsCorruptInput) {
  Snapshot snap;
  snap.put(tag("ENGN"), std::string("abcd"));
  std::string bytes = snap.serialize();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(Snapshot::parse(bad_magic), std::exception);
  EXPECT_THROW(Snapshot::parse(bytes.substr(0, bytes.size() - 2)), std::exception);
  EXPECT_THROW(Snapshot::parse(""), std::exception);
}

TEST(Blob, FileRoundTrip) {
  Snapshot snap;
  snap.put(tag("SCEN"), std::string("payload"));
  const std::string path = ::testing::TempDir() + "mvqoe_blob_roundtrip.blob";
  ASSERT_TRUE(Snapshot::write_file(path, snap));
  const Snapshot loaded = Snapshot::read_file(path);
  EXPECT_EQ(loaded.digest(), snap.digest());
  std::remove(path.c_str());
  EXPECT_THROW(Snapshot::read_file(path), std::exception);
}

// The tentpole contract: a straight run and a checkpoint-at-T restore
// (replay to T, digest-verified) that then runs to completion produce
// identical digests — for several T per scenario, across every family.
TEST(Replay, RoundTripInvariantAcrossAllFamilies) {
  for (const std::string& family : scenario::scenario_families()) {
    const ScenarioSpec scen =
        single_video(family, 480, 30, 12, mem::PressureLevel::Moderate, 21);

    const Snapshot blob = replay::record_run(scen, {sec(4), std::nullopt});
    const auto trail = replay::load_trail(blob);
    const auto meta = replay::load_meta(blob);
    ASSERT_GE(trail.size(), 4u) << family;  // 0s + at least 4/8/12

    for (const sim::Time t : {sec(4), sec(8), sec(12)}) {
      SCOPED_TRACE(family + " T=" + std::to_string(sim::to_seconds(t)));
      ReplayDriver driver(scen);
      driver.start();
      ASSERT_TRUE(driver.advance_to_offset(t));
      // "Restore to T": the replayed state must digest-match the trail...
      std::size_t index = trail.size();
      for (std::size_t i = 0; i < trail.size(); ++i) {
        if (trail[i].offset == t) index = i;
      }
      ASSERT_LT(index, trail.size());
      EXPECT_EQ(driver.digest(), trail[index].digest);
      // ...and running on from the restored state must land exactly on
      // the straight run's final state.
      while (!driver.done()) {
        driver.advance_to_offset(driver.offset() + sec(4));
      }
      EXPECT_EQ(driver.offset(), meta.end_offset);
      EXPECT_EQ(driver.digest(), meta.final_digest);
    }
  }
}

TEST(Replay, VerifyPassesCleanAndCatchesPerturbation) {
  const ScenarioSpec scen =
      single_video("fig16", 720, 48, 12, mem::PressureLevel::Normal, 7);
  const Snapshot blob = replay::record_run(scen, {sec(4), std::nullopt});

  const auto clean = replay::verify_replay(blob);
  EXPECT_TRUE(clean.ok) << replay::format_report(clean);

  // One flipped RNG bit at +6s: the first checkpoint at or after the
  // perturbation (+8s) must mismatch.
  const auto dirty = replay::verify_replay(blob, sec(6));
  ASSERT_FALSE(dirty.ok);
  EXPECT_EQ(dirty.mismatch_offset, sec(8));
  EXPECT_NE(dirty.expected, dirty.actual);
}

TEST(Replay, BisectPinpointsInjectedPerturbation) {
  const ScenarioSpec scen =
      single_video("fig16", 720, 48, 12, mem::PressureLevel::Normal, 7);
  const Snapshot blob = replay::record_run(scen, {sec(4), std::nullopt});

  const auto report = replay::bisect_divergence(blob, sec(6));
  ASSERT_TRUE(report.diverged);
  // Perturbed at +6s => divergence lies in the (+4s, +8s] interval.
  EXPECT_EQ(report.interval_start, sec(4));
  EXPECT_EQ(report.interval_end, sec(8));
  EXPECT_EQ(report.subsystem, "sysact");  // the perturbed RNG's owner
  // The first diverging event is the first one after the perturbation.
  const auto meta = replay::load_meta(blob);
  EXPECT_GT(report.event_time, meta.video_start + sec(6));
  EXPECT_LE(report.event_time, meta.video_start + sec(8));
  EXPECT_GT(report.event_seq, 0u);
}

TEST(Replay, RecordedBlobSurvivesSerializeParse) {
  fault::FaultPlan plan;
  plan.link_outages.push_back({sec(2), sec(1)});
  const ScenarioSpec scen =
      single_video("fig11", 360, 30, 8, mem::PressureLevel::Normal, 3, plan);
  const Snapshot blob = replay::record_run(scen, {sec(4), std::nullopt});

  const Snapshot reparsed = Snapshot::parse(blob.serialize());
  ByteReader r(reparsed.require(replay::kScenTag));
  const ScenarioSpec loaded = scenario::load_scenario(r);
  EXPECT_EQ(loaded.family, scen.family);
  EXPECT_EQ(scenario::video_spec(loaded).height, scenario::video_spec(scen).height);
  EXPECT_EQ(loaded.seed, scen.seed);
  const auto& loaded_plan = scenario::video_spec(loaded).fault_plan;
  ASSERT_EQ(loaded_plan.link_outages.size(), 1u);
  EXPECT_EQ(loaded_plan.link_outages[0].at, sec(2));

  const auto verified = replay::verify_replay(reparsed);
  EXPECT_TRUE(verified.ok) << replay::format_report(verified);
}

// Golden-trace regression: a blob recorded once and committed to the
// repo must keep replaying digest-identical. A failure here means the
// simulation's behavior changed — if intentional, re-record via
// `mvqoe_replay record tests/data/golden_fig16.blob --family=fig16
//  --height=720 --fps=48 --duration=12 --state=moderate --seed=7
//  --interval=4`.
TEST(Replay, GoldenBlobReplaysDigestIdentical) {
  const std::string path = std::string(MVQOE_TEST_DATA_DIR) + "/golden_fig16.blob";
  Snapshot blob;
  try {
    blob = Snapshot::read_file(path);
  } catch (const std::exception& e) {
    FAIL() << "golden blob missing/unreadable: " << e.what();
  }
  const auto report = replay::verify_replay(blob);
  EXPECT_TRUE(report.ok) << replay::format_report(report)
                         << " — simulation behavior drifted from the committed golden trace";
}

TEST(WarmSweep, ForkedWarmMatchesColdByteForByte) {
  if (!runner::warm_fork_supported()) GTEST_SKIP() << "no fork on this platform";
  scenario::ScenarioSpec proto;
  proto.family.clear();
  proto.device_override = core::nokia1();
  scenario::VideoWorkloadSpec video;
  video.duration_s = 8;
  proto.workloads.emplace_back(std::move(video));
  const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Moderate};
  const std::vector<int> fps = {30};
  const std::vector<int> heights = {360, 480};
  const int runs = 2;

  const auto cold =
      runner::run_sweep_grid_shared(proto, states, fps, heights, runs, 1, 99,
                                    runner::SweepMode::Cold);
  const auto warm =
      runner::run_sweep_grid_shared(proto, states, fps, heights, runs, 1, 99,
                                    runner::SweepMode::Warm);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].failures, 0u);
    EXPECT_EQ(warm[i].failures, 0u);
  }
  EXPECT_EQ(runner::sweep_json("identity", cold, runs, 1, 99),
            runner::sweep_json("identity", warm, runs, 1, 99));
}

TEST(WarmSweep, SeedSchemeIsCollisionFreeAcrossCoordinates) {
  const std::uint64_t g1 = runner::sweep_group_seed(1, mem::PressureLevel::Normal, 0);
  const std::uint64_t g2 = runner::sweep_group_seed(1, mem::PressureLevel::Moderate, 0);
  const std::uint64_t g3 = runner::sweep_group_seed(1, mem::PressureLevel::Normal, 1);
  EXPECT_NE(g1, g2);
  EXPECT_NE(g1, g3);
  EXPECT_NE(runner::sweep_video_seed(g1, 480, 30), runner::sweep_video_seed(g1, 480, 60));
  EXPECT_NE(runner::sweep_video_seed(g1, 480, 30), runner::sweep_video_seed(g1, 720, 30));
  EXPECT_NE(runner::sweep_video_seed(g1, 480, 30), runner::sweep_video_seed(g2, 480, 30));
}

}  // namespace
}  // namespace mvqoe::snapshot
