#!/bin/sh
# Policy-lab CLI determinism smoke (ISSUE 9 acceptance scenario): the
# same four-policy compare executed serially, under --procs 4, and
# SIGKILLed partway (--kill-after-checkpoints) then resumed must print
# the same compare digest and write byte-identical per-policy
# BENCH_*.json lanes. The baseline lane must also match a plain
# single-policy sweep of the same grid — the compare machinery may
# never perturb the mechanism core.
set -u

POLICY="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mvqoe_policy_smoke.XXXXXX")" || exit 1
trap 'rm -rf "$WORK"' EXIT

STATE="$WORK/policy.mvqs"
SPEC="--duration 8 --runs 2 --seed 5 --states low --fps 30 --heights 480"

digest_of() {
  sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$1" | tail -1
}

echo "== uninterrupted serial compare =="
mkdir -p "$WORK/serial"
# shellcheck disable=SC2086
MVQOE_JSON_DIR="$WORK/serial" "$POLICY" compare $SPEC --out lab \
    > "$WORK/serial.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "serial compare failed with exit $status"
  cat "$WORK/serial.log"
  exit 1
fi
serial_digest=$(digest_of "$WORK/serial.log")
echo "serial digest: $serial_digest"
[ -n "$serial_digest" ] || { cat "$WORK/serial.log"; exit 1; }
for lane in baseline swam ariadne partitioned; do
  [ -f "$WORK/serial/BENCH_lab_$lane.json" ] || {
    echo "missing BENCH_lab_$lane.json"
    exit 1
  }
done

echo "== --procs 4 compare =="
mkdir -p "$WORK/procs"
# shellcheck disable=SC2086
MVQOE_JSON_DIR="$WORK/procs" "$POLICY" compare $SPEC --procs 4 --out lab \
    > "$WORK/procs.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "procs compare failed with exit $status"
  cat "$WORK/procs.log"
  exit 1
fi
procs_digest=$(digest_of "$WORK/procs.log")
echo "procs digest:  $procs_digest"
if [ "$procs_digest" != "$serial_digest" ]; then
  echo "DIGEST MISMATCH: serial=$serial_digest procs=$procs_digest"
  exit 1
fi
for lane in baseline swam ariadne partitioned; do
  cmp -s "$WORK/serial/BENCH_lab_$lane.json" "$WORK/procs/BENCH_lab_$lane.json" || {
    echo "procs lane '$lane' differs from the serial lane"
    exit 1
  }
done

echo "== compare SIGKILLed after 1 checkpoint =="
# shellcheck disable=SC2086
"$POLICY" compare $SPEC --state "$STATE" --kill-after-checkpoints 1 \
    > "$WORK/killed.log" 2>&1
status=$?
# 137 = 128 + SIGKILL: the coordinator must actually die, not exit.
if [ $status -ne 137 ]; then
  echo "expected the compare to die by SIGKILL (exit 137), got $status"
  cat "$WORK/killed.log"
  exit 1
fi
[ -f "$STATE" ] || { echo "no checkpoint at $STATE"; exit 1; }

echo "== resume from the checkpoint (grid comes from the blob) =="
mkdir -p "$WORK/resumed"
MVQOE_JSON_DIR="$WORK/resumed" "$POLICY" compare --resume "$STATE" --out lab \
    > "$WORK/resume.log" 2>&1
status=$?
if [ $status -ne 0 ]; then
  echo "resume failed with exit $status"
  cat "$WORK/resume.log"
  exit 1
fi
resumed_digest=$(digest_of "$WORK/resume.log")
echo "resumed digest: $resumed_digest"
if [ "$resumed_digest" != "$serial_digest" ]; then
  echo "DIGEST MISMATCH: serial=$serial_digest resumed=$resumed_digest"
  cat "$WORK/resume.log"
  exit 1
fi
for lane in baseline swam ariadne partitioned; do
  cmp -s "$WORK/serial/BENCH_lab_$lane.json" "$WORK/resumed/BENCH_lab_$lane.json" || {
    echo "resumed lane '$lane' differs from the serial lane"
    exit 1
  }
done

echo "OK: serial, --procs and kill-and-resume are byte-identical"
exit 0
