#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(msec(1), 1000);
  EXPECT_EQ(sec(1), 1'000'000);
  EXPECT_EQ(minutes(2), sec(120));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(7)), 7.0);
  EXPECT_EQ(from_seconds(2.5), sec(2) + msec(500));
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(sec(3), [&] { order.push_back(3); });
  engine.schedule_at(sec(1), [&] { order.push_back(1); });
  engine.schedule_at(sec(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), sec(3));
}

TEST(Engine, SameTimeEventsFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(sec(1), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleRelativeDelay) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(sec(5), [&] {
    engine.schedule(msec(100), [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, sec(5) + msec(100));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(sec(1), [&] {
    engine.schedule(-sec(10), [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, sec(1));
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(sec(1), [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelInvalidIdIsNoop) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(kInvalidEvent));
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(sec(1), [&] { ++fired; });
  engine.schedule_at(sec(2), [&] { ++fired; });
  engine.schedule_at(sec(3), [&] { ++fired; });
  engine.run_until(sec(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), sec(2));
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(sec(10));
  EXPECT_EQ(engine.now(), sec(10));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  bool fired = false;
  engine.schedule(0, [&] { fired = true; });
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule(msec(1), recurse);
  };
  engine.schedule(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), msec(99));
}

TEST(Engine, PendingEventsExcludesCancelled) {
  Engine engine;
  const EventId a = engine.schedule_at(sec(1), [] {});
  engine.schedule_at(sec(2), [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, CancelThenRunUntilExactlyAtEventTimeIsClean) {
  // Regression for the lazy-cancel boundary case: an event cancelled
  // before run_until(t) where t is exactly its timestamp must neither
  // fire nor linger in the queue, and the clock must still land on t.
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(sec(2), [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run_until(sec(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.now(), sec(2));
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, CancelOneOfSameTimeEventsAtBoundaryKeepsOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(sec(1), [&] { order.push_back(0); });
  const EventId middle = engine.schedule_at(sec(1), [&] { order.push_back(1); });
  engine.schedule_at(sec(1), [&] { order.push_back(2); });
  engine.cancel(middle);
  engine.run_until(sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, DispatchedCountsExcludeCancelledEvents) {
  Engine engine;
  engine.schedule_at(sec(1), [] {});
  const EventId cancelled = engine.schedule_at(sec(2), [] {});
  engine.schedule_at(sec(3), [] {});
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(engine.dispatched(), 2u);
}

TEST(Engine, LivelockTripwireCountsZeroDelayRuns) {
  Engine engine;
  engine.set_livelock_limit(10);
  int count = 0;
  std::function<void()> spin = [&] {
    if (++count < 50) engine.schedule(0, spin);
  };
  engine.schedule(0, spin);
  engine.run();
  EXPECT_GE(engine.livelock_trips(), 1u);
}

TEST(Engine, AdvancingClockNeverTripsLivelock) {
  Engine engine;
  engine.set_livelock_limit(10);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 50) engine.schedule(1, tick);
  };
  engine.schedule(0, tick);
  engine.run();
  EXPECT_EQ(engine.livelock_trips(), 0u);
}

TEST(Engine, InvariantsHoldThroughCancelChurn) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(engine.schedule_at(msec(i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) engine.cancel(ids[i]);
  EXPECT_TRUE(engine.check_invariants());
  engine.run_until(msec(100));
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(PeriodicTask, FiresAtPeriodUntilStopped) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  engine.run_until(sec(5));
  EXPECT_EQ(fires, 5);
  task.stop();
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTask, RestartAfterStop) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  engine.run_until(sec(2));
  task.stop();
  task.start();
  engine.run_until(sec(4));
  EXPECT_EQ(fires, 4);
  EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, DoubleStartIsIdempotent) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  task.start();
  engine.run_until(sec(3));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, CanStopItselfFromCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] {
    if (++fires == 3) task.stop();
  });
  task.start();
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 3);
}

// Regression: cancelled far-future entries must not accumulate. A
// scheduler that parks 100k timers way out and cancels them all used to
// hold every entry until the clock reached it; compaction keeps the
// stored heap proportional to the live set.
TEST(Engine, CancelledFarFutureTimersAreCompacted) {
  Engine engine;
  std::size_t peak = 0;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = engine.schedule_at(hours(24) + sec(i), [] {});
    EXPECT_TRUE(engine.cancel(id));
    peak = std::max(peak, engine.queued_entries());
  }
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 0u);
  // One live-entry-free heap never grows past the compaction floor.
  EXPECT_LT(peak, 256u);
  EXPECT_LT(engine.queued_entries(), 256u);
}

TEST(Engine, BulkCancelCompactsWithLiveEventsPresent) {
  Engine engine;
  int fired = 0;
  // 1k live near-term events interleaved with 100k far-future cancels.
  for (int i = 0; i < 1000; ++i) {
    engine.schedule_at(msec(i), [&] { ++fired; });
  }
  std::vector<EventId> doomed;
  doomed.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    doomed.push_back(engine.schedule_at(hours(48) + sec(i), [] {}));
  }
  for (const EventId id : doomed) engine.cancel(id);
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 1000u);
  // Compaction bound: heap never holds more cancelled than live + floor.
  EXPECT_LE(engine.queued_entries(), 2u * engine.pending_events() + 64u);
  engine.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(engine.queued_entries(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, CompactionPreservesTimeSeqDispatchOrder) {
  Engine engine;
  std::vector<int> order;
  // Same-time group whose FIFO order must survive a mid-stream rebuild.
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(sec(2), [&order, i] { order.push_back(i); });
  }
  // Trigger compaction between the scheduling and the dispatch.
  std::vector<EventId> doomed;
  for (int i = 0; i < 5000; ++i) doomed.push_back(engine.schedule_at(hours(1), [] {}));
  for (const EventId id : doomed) engine.cancel(id);
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, DigestInvariantAcrossCompactionBoundary) {
  // Two engines with identical schedule histories and identical final
  // live sets, but mechanically different cancellation paths: A cancels
  // all victims in one burst (crossing the maybe_compact threshold),
  // while B drains half its cancelled entries through run_until first
  // and never compacts. Logical state is equal, so digests must match.
  Engine a;
  Engine b;
  std::vector<EventId> victims_a;
  std::vector<EventId> victims_b;
  for (int i = 0; i < 140; ++i) {
    a.schedule_at(hours(1) + sec(i), [] {});
    b.schedule_at(hours(1) + sec(i), [] {});
  }
  for (int i = 0; i < 150; ++i) {
    victims_a.push_back(a.schedule_at(sec(1 + i), [] {}));
    victims_b.push_back(b.schedule_at(sec(1 + i), [] {}));
  }

  for (const EventId id : victims_a) a.cancel(id);  // compacts mid-burst

  for (int i = 0; i < 100; ++i) b.cancel(victims_b[static_cast<std::size_t>(i)]);
  b.run_until(0);  // pops the cancelled heads without advancing the clock
  for (int i = 100; i < 150; ++i) b.cancel(victims_b[static_cast<std::size_t>(i)]);

  // The mechanical histories really did diverge...
  EXPECT_NE(a.queued_entries(), b.queued_entries());
  // ...but the logical state did not.
  EXPECT_EQ(a.pending_events(), b.pending_events());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.live_events(), b.live_events());
}

TEST(Engine, DigestReflectsClockSeqAndLiveSet) {
  Engine engine;
  const std::uint64_t empty = engine.digest();
  const EventId id = engine.schedule_at(sec(5), [] {});
  const std::uint64_t with_event = engine.digest();
  EXPECT_NE(empty, with_event);
  engine.cancel(id);
  // Cancelling restores the live set but not next_seq: an engine that
  // consumed an id will order future same-time events differently, so
  // the digest must not return to the empty-engine value.
  EXPECT_NE(engine.digest(), empty);
  EXPECT_NE(engine.digest(), with_event);

  // Pure clock advance (no events) changes the digest too.
  const std::uint64_t before = engine.digest();
  engine.run_until(sec(1));
  EXPECT_NE(engine.digest(), before);
}

// Regression: stopping from inside the callback and restarting in the
// same invocation must yield exactly one fresh chain (no lost or doubled
// fires).
TEST(PeriodicTask, RestartFromInsideCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] {
    ++fires;
    if (fires == 2) {
      task.stop();
      EXPECT_FALSE(task.running());
      task.start();
      EXPECT_TRUE(task.running());
    }
  });
  task.start();
  engine.run_until(sec(6));
  // Fires at 1s..6s: the in-callback restart keeps the same cadence.
  EXPECT_EQ(fires, 6);
  task.stop();
  engine.run_until(sec(20));
  EXPECT_EQ(fires, 6);
}

TEST(PeriodicTask, StopDuringFireCancelsRescheduledChain) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, msec(10), [&] {
    ++fires;
    task.stop();
  });
  task.start();
  engine.run_until(sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(task.running());
  EXPECT_EQ(engine.pending_events(), 0u);
}

// Regression: destroying the task from inside its own callback used to
// destroy the std::function mid-invocation (UB); the shared state block
// now outlives the call.
TEST(PeriodicTask, SelfDestructionFromCallbackIsSafe) {
  Engine engine;
  int fires = 0;
  PeriodicTask* task = nullptr;
  task = new PeriodicTask(engine, msec(10), [&] {
    ++fires;
    delete task;
    task = nullptr;
  });
  task->start();
  engine.run_until(sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(task, nullptr);
  // The destructor cancelled the rescheduled fire: nothing left pending.
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}


// ---------------------------------------------------------------------------
// run_until contract (regression pin)
// ---------------------------------------------------------------------------

TEST(Engine, RunUntilLandsClockExactlyOnTarget) {
  // Pinned semantics: run_until(t) always leaves the clock at exactly t —
  // whether the last event fired before t, the queue drained early, or no
  // event was eligible at all. (The header once claimed the clock stopped
  // at the last event time; the implemented always-advance behavior is
  // what every idle-world caller depends on.)
  Engine engine;
  int fired = 0;
  engine.schedule_at(sec(1), [&] { ++fired; });
  engine.schedule_at(sec(7), [&] { ++fired; });

  engine.run_until(sec(3));  // one event behind t, one ahead
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), sec(3));
  EXPECT_EQ(engine.pending_events(), 1u);

  engine.run_until(sec(5));  // nothing eligible: clock still advances
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), sec(5));

  engine.run_until(sec(7));  // boundary-inclusive dispatch
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), sec(7));

  engine.run_until(sec(10));  // empty queue: clock lands on t regardless
  EXPECT_EQ(engine.now(), sec(10));
}

// ---------------------------------------------------------------------------
// Event arena: slot reuse, generation tags, bounded growth
// ---------------------------------------------------------------------------

TEST(EngineArena, StaleCancelAfterSlotReuseIsNoOp) {
  Engine engine;
  bool b_fired = false;
  const EventId a = engine.schedule_at(sec(1), [] {});
  ASSERT_TRUE(engine.cancel(a));
  // The freed slot is recycled immediately: same arena footprint.
  const EventId b = engine.schedule_at(sec(2), [&] { b_fired = true; });
  ASSERT_EQ(engine.slot_capacity(), 1u) << "cancel must recycle the slot";
  ASSERT_NE(a, b) << "generation tag must distinguish tenants of one slot";

  // Cancelling with the stale id is a harmless no-op; the new tenant
  // stays pending and fires.
  EXPECT_FALSE(engine.cancel(a));
  EXPECT_EQ(engine.pending_events(), 1u);
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  EXPECT_TRUE(b_fired);
  EXPECT_FALSE(engine.cancel(a));
  EXPECT_FALSE(engine.cancel(b));
}

TEST(EngineArena, SteadyStateLoopHoldsOneSlot) {
  // A self-rescheduling loop — the shape of every periodic sampler and
  // timeslice chain — must cycle through a single arena slot forever.
  Engine engine;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 10000) engine.schedule(msec(1), tick);
  };
  engine.schedule(msec(1), tick);
  engine.run();
  EXPECT_EQ(fires, 10000);
  EXPECT_EQ(engine.slot_capacity(), 1u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(EngineArena, SlotCapacityTracksLiveHighWater) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(engine.schedule_at(sec(i + 1), [] {}));
  EXPECT_EQ(engine.slot_capacity(), 100u);
  for (const EventId id : ids) EXPECT_TRUE(engine.cancel(id));
  // Re-scheduling reuses the freed slots; the arena does not grow.
  for (int i = 0; i < 100; ++i) engine.schedule_at(sec(i + 1), [] {});
  EXPECT_EQ(engine.slot_capacity(), 100u);
  EXPECT_EQ(engine.pending_events(), 100u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(EngineArena, GenerationReuseStorm) {
  // Schedule/cancel storm over a small arena: every cancelled id is
  // retried after its slot has been reused, and must stay a no-op.
  Engine engine;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<EventId> stale;
  std::vector<EventId> live;
  for (int round = 0; round < 2000; ++round) {
    live.push_back(engine.schedule_at(sec(100) + static_cast<Time>(next_rand() % 1000), [] {}));
    if (live.size() > 8) {
      const std::size_t pick = next_rand() % live.size();
      ASSERT_TRUE(engine.cancel(live[pick]));
      stale.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (!stale.empty() && round % 7 == 0) {
      // Retired ids whose slots have long been recycled: all no-ops.
      ASSERT_FALSE(engine.cancel(stale[next_rand() % stale.size()]));
    }
    ASSERT_EQ(engine.pending_events(), live.size());
  }
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_LE(engine.slot_capacity(), 16u) << "arena must track the live high-water, not the storm";
  for (const EventId id : stale) EXPECT_FALSE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

// ---------------------------------------------------------------------------
// Compaction hysteresis: amortized-O(1) cancels
// ---------------------------------------------------------------------------

TEST(EngineArena, CancelStormCompactionIsAmortizedConstant) {
  // A workload hovering at the compaction threshold used to pay a full
  // O(n) rebuild (plus a realloc from shrink_to_fit) on nearly every
  // cancel. Each compaction now removes more than half the heap and
  // leaves zero stale residue, so the total entries scanned across all
  // rebuilds is linearly bounded by the number of cancels.
  Engine engine;
  std::uint64_t cancels = 0;
  for (int round = 0; round < 500; ++round) {
    std::vector<EventId> batch;
    for (int i = 0; i < 40; ++i) batch.push_back(engine.schedule_at(sec(1000) + round, [] {}));
    for (const EventId id : batch) {
      ASSERT_TRUE(engine.cancel(id));
      ++cancels;
    }
  }
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_GT(engine.compactions(), 0u);
  // Amortized-O(1): scanned work is a small constant per cancel. The
  // trigger ratio guarantees <= ~2 entries scanned per cancel; 4 leaves
  // headroom for the kCompactMinEntries floor.
  EXPECT_LE(engine.compaction_scanned(), 4 * cancels + 256);
  // And the storm never held more than the documented residue bound.
  EXPECT_LT(engine.queued_entries(), 2 * engine.pending_events() + 64);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(EngineArena, CompactionCountersExposedAndMonotone) {
  Engine engine;
  EXPECT_EQ(engine.compactions(), 0u);
  EXPECT_EQ(engine.compaction_scanned(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(engine.schedule_at(sec(100), [] {}));
  for (const EventId id : ids) engine.cancel(id);
  EXPECT_GT(engine.compactions(), 0u);
  EXPECT_GE(engine.compaction_scanned(), engine.compactions());
  EXPECT_TRUE(engine.check_invariants());
}

// ---------------------------------------------------------------------------
// pending_events underflow guard
// ---------------------------------------------------------------------------

TEST(EngineArena, PendingEventsIsMaintainedNotDerived) {
  // pending_events() was heap_size - cancelled_size in size_t: a
  // bookkeeping bug underflowed it to ~2^64. It is now a maintained
  // counter cross-checked by check_invariants(), so it can never exceed
  // the entries actually held, cancelled residue included.
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(engine.schedule_at(sec(1 + i % 7), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2) engine.cancel(ids[i]);
  EXPECT_LE(engine.pending_events(), engine.queued_entries());
  EXPECT_EQ(engine.pending_events(), engine.live_events().size());
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_LE(engine.pending_events(), engine.queued_entries());
  // Double-cancel (the classic way to corrupt derived bookkeeping) stays
  // a no-op: counters and invariants hold.
  for (const EventId id : ids) EXPECT_FALSE(engine.cancel(id));
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

// ---------------------------------------------------------------------------
// Flat events: dispatch parity with closures
// ---------------------------------------------------------------------------

namespace flat_helpers {
struct Recorder {
  std::vector<std::uint64_t> seen;
};
void record(void* ctx, std::uint64_t arg) {
  static_cast<Recorder*>(ctx)->seen.push_back(arg);
}
}  // namespace flat_helpers

TEST(EngineFlat, FlatAndClosureEventsShareOneFifoOrder) {
  Engine engine;
  flat_helpers::Recorder rec;
  std::vector<std::uint64_t> order;
  engine.schedule_flat_at(sec(1), &flat_helpers::record, &rec, 1);
  engine.schedule_at(sec(1), [&] { order.push_back(2); });
  engine.schedule_flat_at(sec(1), &flat_helpers::record, &rec, 3);
  engine.schedule_at(sec(1), [&] { order.push_back(4); });
  engine.run();
  // Both flavours draw from the same seq counter: strict FIFO among
  // same-time events regardless of how they were scheduled.
  ASSERT_EQ(rec.seen, (std::vector<std::uint64_t>{1, 3}));
  ASSERT_EQ(order, (std::vector<std::uint64_t>{2, 4}));
  EXPECT_EQ(engine.dispatched(), 4u);
}

TEST(EngineFlat, FlatEventsCancelAndCarryArgs) {
  Engine engine;
  flat_helpers::Recorder rec;
  const EventId keep = engine.schedule_flat(sec(1), &flat_helpers::record, &rec, 0xdeadbeefull);
  const EventId drop = engine.schedule_flat(sec(2), &flat_helpers::record, &rec, 7);
  EXPECT_TRUE(engine.cancel(drop));
  EXPECT_FALSE(engine.cancel(drop));
  engine.run();
  ASSERT_EQ(rec.seen, (std::vector<std::uint64_t>{0xdeadbeefull}));
  EXPECT_FALSE(engine.cancel(keep));
  EXPECT_TRUE(engine.check_invariants());
}

TEST(EngineFlat, DigestBlindToSchedulingFlavour) {
  // Two engines scheduling the same (time, seq) stream — one flat, one
  // closures — are indistinguishable to digest(), live_events() and
  // save(): flatness is an allocation detail, not replayable state.
  Engine flat_engine;
  Engine closure_engine;
  flat_helpers::Recorder rec;
  for (int i = 0; i < 20; ++i) {
    flat_engine.schedule_flat_at(sec(i % 5), &flat_helpers::record, &rec,
                                 static_cast<std::uint64_t>(i));
    closure_engine.schedule_at(sec(i % 5), [] {});
  }
  EXPECT_EQ(flat_engine.digest(), closure_engine.digest());
  EXPECT_EQ(flat_engine.live_events(), closure_engine.live_events());
  flat_engine.run_until(sec(2));
  closure_engine.run_until(sec(2));
  EXPECT_EQ(flat_engine.digest(), closure_engine.digest());
}

// ---------------------------------------------------------------------------
// Differential check against a reference model
// ---------------------------------------------------------------------------

// Executable spec of the engine's serializable behavior: an ordered map
// of (time, seq) with eager erase — no heap, no arena, no lazy residue.
// The arena engine must be observationally identical under any
// schedule/cancel/run interleaving.
class ReferenceEngine {
 public:
  std::uint64_t schedule_at(Time t, Time* now) {
    if (t < now_) t = now_;
    const std::uint64_t seq = next_seq_++;
    live_.emplace(std::make_pair(t, seq), 0);
    if (now != nullptr) *now = now_;
    return seq;
  }
  bool cancel(std::uint64_t seq) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->first.second == seq) {
        live_.erase(it);
        return true;
      }
    }
    return false;
  }
  void run_until(Time t) {
    while (!live_.empty() && live_.begin()->first.first <= t) {
      now_ = live_.begin()->first.first;
      ++dispatched_;
      live_.erase(live_.begin());
    }
    if (now_ < t) now_ = t;
  }
  std::vector<std::pair<Time, std::uint64_t>> live_events() const {
    std::vector<std::pair<Time, std::uint64_t>> out;
    for (const auto& [key, value] : live_) out.push_back(key);
    return out;
  }
  std::uint64_t digest() const {
    snapshot::StateHash h;
    h.mix(static_cast<std::uint64_t>(now_));
    h.mix(next_seq_);
    for (const auto& [key, value] : live_) {
      h.mix(static_cast<std::uint64_t>(key.first));
      h.mix(key.second);
    }
    return h.value();
  }
  Time now() const { return now_; }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::map<std::pair<Time, std::uint64_t>, int> live_;
};

TEST(EngineArena, DifferentialDigestAgainstReferenceModel) {
  Engine engine;
  ReferenceEngine ref;
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  auto next_rand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Parallel id spaces: engine EventIds alongside the reference seqs.
  std::vector<std::pair<EventId, std::uint64_t>> live;
  std::vector<std::pair<EventId, std::uint64_t>> retired;
  for (int round = 0; round < 3000; ++round) {
    const std::uint64_t op = next_rand() % 10;
    if (op < 5) {  // schedule (no-op payload: only (time, seq) is state)
      const Time t = engine.now() + static_cast<Time>(next_rand() % sec(2));
      const EventId id = engine.schedule_at(t, [] {});
      const std::uint64_t seq = ref.schedule_at(t, nullptr);
      ASSERT_EQ(engine.seq_of(id), seq) << "seq streams diverged";
      live.emplace_back(id, seq);
    } else if (op < 7 && !live.empty()) {  // cancel a live event
      const std::size_t pick = next_rand() % live.size();
      ASSERT_TRUE(engine.cancel(live[pick].first));
      ASSERT_TRUE(ref.cancel(live[pick].second));
      retired.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (op < 8 && !retired.empty()) {  // stale cancel: both no-op
      const auto& dead = retired[next_rand() % retired.size()];
      ASSERT_FALSE(engine.cancel(dead.first));
      ASSERT_FALSE(ref.cancel(dead.second));
    } else {  // advance time, dispatching everything due
      const Time t = engine.now() + static_cast<Time>(next_rand() % sec(1));
      engine.run_until(t);
      ref.run_until(t);
      const Time now = engine.now();
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&engine](const auto& entry) {
                                  return engine.seq_of(entry.first) == 0;
                                }),
                 live.end());
      ASSERT_EQ(now, ref.now());
    }
    ASSERT_EQ(engine.pending_events(), ref.pending());
    ASSERT_EQ(engine.dispatched(), ref.dispatched());
    if (round % 16 == 0) {
      ASSERT_EQ(engine.live_events(), ref.live_events());
      ASSERT_EQ(engine.digest(), ref.digest());
      ASSERT_TRUE(engine.check_invariants());
    }
  }
  EXPECT_EQ(engine.live_events(), ref.live_events());
  EXPECT_EQ(engine.digest(), ref.digest());
  EXPECT_TRUE(engine.check_invariants());
}

TEST(PeriodicTask, SteadyStateAllocatesNoNewSlots) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, msec(16), [&] { ++fires; });  // vsync-shaped
  task.start();
  engine.run_until(sec(60));
  EXPECT_GT(fires, 3000);
  // The periodic chain cycles through a single arena slot.
  EXPECT_EQ(engine.slot_capacity(), 1u);
  task.stop();
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(PeriodicTask, DestructionOutsideCallbackStillCancels) {
  Engine engine;
  int fires = 0;
  {
    PeriodicTask task(engine, sec(1), [&] { ++fires; });
    task.start();
    engine.run_until(sec(2));
  }
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(engine.pending_events(), 0u);
}

}  // namespace
}  // namespace mvqoe::sim
