#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace mvqoe::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(msec(1), 1000);
  EXPECT_EQ(sec(1), 1'000'000);
  EXPECT_EQ(minutes(2), sec(120));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(7)), 7.0);
  EXPECT_EQ(from_seconds(2.5), sec(2) + msec(500));
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(sec(3), [&] { order.push_back(3); });
  engine.schedule_at(sec(1), [&] { order.push_back(1); });
  engine.schedule_at(sec(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), sec(3));
}

TEST(Engine, SameTimeEventsFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(sec(1), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleRelativeDelay) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(sec(5), [&] {
    engine.schedule(msec(100), [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, sec(5) + msec(100));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(sec(1), [&] {
    engine.schedule(-sec(10), [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, sec(1));
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(sec(1), [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelInvalidIdIsNoop) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(kInvalidEvent));
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(sec(1), [&] { ++fired; });
  engine.schedule_at(sec(2), [&] { ++fired; });
  engine.schedule_at(sec(3), [&] { ++fired; });
  engine.run_until(sec(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), sec(2));
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(sec(10));
  EXPECT_EQ(engine.now(), sec(10));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  bool fired = false;
  engine.schedule(0, [&] { fired = true; });
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule(msec(1), recurse);
  };
  engine.schedule(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), msec(99));
}

TEST(Engine, PendingEventsExcludesCancelled) {
  Engine engine;
  const EventId a = engine.schedule_at(sec(1), [] {});
  engine.schedule_at(sec(2), [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, CancelThenRunUntilExactlyAtEventTimeIsClean) {
  // Regression for the lazy-cancel boundary case: an event cancelled
  // before run_until(t) where t is exactly its timestamp must neither
  // fire nor linger in the queue, and the clock must still land on t.
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(sec(2), [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run_until(sec(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.now(), sec(2));
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, CancelOneOfSameTimeEventsAtBoundaryKeepsOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(sec(1), [&] { order.push_back(0); });
  const EventId middle = engine.schedule_at(sec(1), [&] { order.push_back(1); });
  engine.schedule_at(sec(1), [&] { order.push_back(2); });
  engine.cancel(middle);
  engine.run_until(sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, DispatchedCountsExcludeCancelledEvents) {
  Engine engine;
  engine.schedule_at(sec(1), [] {});
  const EventId cancelled = engine.schedule_at(sec(2), [] {});
  engine.schedule_at(sec(3), [] {});
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(engine.dispatched(), 2u);
}

TEST(Engine, LivelockTripwireCountsZeroDelayRuns) {
  Engine engine;
  engine.set_livelock_limit(10);
  int count = 0;
  std::function<void()> spin = [&] {
    if (++count < 50) engine.schedule(0, spin);
  };
  engine.schedule(0, spin);
  engine.run();
  EXPECT_GE(engine.livelock_trips(), 1u);
}

TEST(Engine, AdvancingClockNeverTripsLivelock) {
  Engine engine;
  engine.set_livelock_limit(10);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 50) engine.schedule(1, tick);
  };
  engine.schedule(0, tick);
  engine.run();
  EXPECT_EQ(engine.livelock_trips(), 0u);
}

TEST(Engine, InvariantsHoldThroughCancelChurn) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(engine.schedule_at(msec(i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) engine.cancel(ids[i]);
  EXPECT_TRUE(engine.check_invariants());
  engine.run_until(msec(100));
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(PeriodicTask, FiresAtPeriodUntilStopped) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  engine.run_until(sec(5));
  EXPECT_EQ(fires, 5);
  task.stop();
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTask, RestartAfterStop) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  engine.run_until(sec(2));
  task.stop();
  task.start();
  engine.run_until(sec(4));
  EXPECT_EQ(fires, 4);
  EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, DoubleStartIsIdempotent) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] { ++fires; });
  task.start();
  task.start();
  engine.run_until(sec(3));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, CanStopItselfFromCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] {
    if (++fires == 3) task.stop();
  });
  task.start();
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 3);
}

// Regression: cancelled far-future entries must not accumulate. A
// scheduler that parks 100k timers way out and cancels them all used to
// hold every entry until the clock reached it; compaction keeps the
// stored heap proportional to the live set.
TEST(Engine, CancelledFarFutureTimersAreCompacted) {
  Engine engine;
  std::size_t peak = 0;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = engine.schedule_at(hours(24) + sec(i), [] {});
    EXPECT_TRUE(engine.cancel(id));
    peak = std::max(peak, engine.queued_entries());
  }
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 0u);
  // One live-entry-free heap never grows past the compaction floor.
  EXPECT_LT(peak, 256u);
  EXPECT_LT(engine.queued_entries(), 256u);
}

TEST(Engine, BulkCancelCompactsWithLiveEventsPresent) {
  Engine engine;
  int fired = 0;
  // 1k live near-term events interleaved with 100k far-future cancels.
  for (int i = 0; i < 1000; ++i) {
    engine.schedule_at(msec(i), [&] { ++fired; });
  }
  std::vector<EventId> doomed;
  doomed.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    doomed.push_back(engine.schedule_at(hours(48) + sec(i), [] {}));
  }
  for (const EventId id : doomed) engine.cancel(id);
  EXPECT_TRUE(engine.check_invariants());
  EXPECT_EQ(engine.pending_events(), 1000u);
  // Compaction bound: heap never holds more cancelled than live + floor.
  EXPECT_LE(engine.queued_entries(), 2u * engine.pending_events() + 64u);
  engine.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(engine.queued_entries(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Engine, CompactionPreservesTimeSeqDispatchOrder) {
  Engine engine;
  std::vector<int> order;
  // Same-time group whose FIFO order must survive a mid-stream rebuild.
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(sec(2), [&order, i] { order.push_back(i); });
  }
  // Trigger compaction between the scheduling and the dispatch.
  std::vector<EventId> doomed;
  for (int i = 0; i < 5000; ++i) doomed.push_back(engine.schedule_at(hours(1), [] {}));
  for (const EventId id : doomed) engine.cancel(id);
  EXPECT_TRUE(engine.check_invariants());
  engine.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, DigestInvariantAcrossCompactionBoundary) {
  // Two engines with identical schedule histories and identical final
  // live sets, but mechanically different cancellation paths: A cancels
  // all victims in one burst (crossing the maybe_compact threshold),
  // while B drains half its cancelled entries through run_until first
  // and never compacts. Logical state is equal, so digests must match.
  Engine a;
  Engine b;
  std::vector<EventId> victims_a;
  std::vector<EventId> victims_b;
  for (int i = 0; i < 140; ++i) {
    a.schedule_at(hours(1) + sec(i), [] {});
    b.schedule_at(hours(1) + sec(i), [] {});
  }
  for (int i = 0; i < 150; ++i) {
    victims_a.push_back(a.schedule_at(sec(1 + i), [] {}));
    victims_b.push_back(b.schedule_at(sec(1 + i), [] {}));
  }

  for (const EventId id : victims_a) a.cancel(id);  // compacts mid-burst

  for (int i = 0; i < 100; ++i) b.cancel(victims_b[static_cast<std::size_t>(i)]);
  b.run_until(0);  // pops the cancelled heads without advancing the clock
  for (int i = 100; i < 150; ++i) b.cancel(victims_b[static_cast<std::size_t>(i)]);

  // The mechanical histories really did diverge...
  EXPECT_NE(a.queued_entries(), b.queued_entries());
  // ...but the logical state did not.
  EXPECT_EQ(a.pending_events(), b.pending_events());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.live_events(), b.live_events());
}

TEST(Engine, DigestReflectsClockSeqAndLiveSet) {
  Engine engine;
  const std::uint64_t empty = engine.digest();
  const EventId id = engine.schedule_at(sec(5), [] {});
  const std::uint64_t with_event = engine.digest();
  EXPECT_NE(empty, with_event);
  engine.cancel(id);
  // Cancelling restores the live set but not next_seq: an engine that
  // consumed an id will order future same-time events differently, so
  // the digest must not return to the empty-engine value.
  EXPECT_NE(engine.digest(), empty);
  EXPECT_NE(engine.digest(), with_event);

  // Pure clock advance (no events) changes the digest too.
  const std::uint64_t before = engine.digest();
  engine.run_until(sec(1));
  EXPECT_NE(engine.digest(), before);
}

// Regression: stopping from inside the callback and restarting in the
// same invocation must yield exactly one fresh chain (no lost or doubled
// fires).
TEST(PeriodicTask, RestartFromInsideCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, sec(1), [&] {
    ++fires;
    if (fires == 2) {
      task.stop();
      EXPECT_FALSE(task.running());
      task.start();
      EXPECT_TRUE(task.running());
    }
  });
  task.start();
  engine.run_until(sec(6));
  // Fires at 1s..6s: the in-callback restart keeps the same cadence.
  EXPECT_EQ(fires, 6);
  task.stop();
  engine.run_until(sec(20));
  EXPECT_EQ(fires, 6);
}

TEST(PeriodicTask, StopDuringFireCancelsRescheduledChain) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, msec(10), [&] {
    ++fires;
    task.stop();
  });
  task.start();
  engine.run_until(sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(task.running());
  EXPECT_EQ(engine.pending_events(), 0u);
}

// Regression: destroying the task from inside its own callback used to
// destroy the std::function mid-invocation (UB); the shared state block
// now outlives the call.
TEST(PeriodicTask, SelfDestructionFromCallbackIsSafe) {
  Engine engine;
  int fires = 0;
  PeriodicTask* task = nullptr;
  task = new PeriodicTask(engine, msec(10), [&] {
    ++fires;
    delete task;
    task = nullptr;
  });
  task->start();
  engine.run_until(sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(task, nullptr);
  // The destructor cancelled the rescheduled fire: nothing left pending.
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(PeriodicTask, DestructionOutsideCallbackStillCancels) {
  Engine engine;
  int fires = 0;
  {
    PeriodicTask task(engine, sec(1), [&] { ++fires; });
    task.start();
    engine.run_until(sec(2));
  }
  engine.run_until(sec(10));
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(engine.pending_events(), 0u);
}

}  // namespace
}  // namespace mvqoe::sim
