#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace mvqoe::core {
namespace {

using mem::PressureLevel;

TEST(Devices, PresetsMatchPaperSpecs) {
  const auto nokia = nokia1();
  EXPECT_EQ(nokia.ram_mb, 1024);
  EXPECT_EQ(nokia.scheduler.cores.size(), 4u);
  EXPECT_DOUBLE_EQ(nokia.scheduler.cores[0].freq_ghz, 1.1);
  EXPECT_EQ(nokia.memory.trim_moderate, 6);
  EXPECT_EQ(nokia.memory.trim_low, 5);
  EXPECT_EQ(nokia.memory.trim_critical, 3);

  const auto n5 = nexus5();
  EXPECT_EQ(n5.ram_mb, 2048);
  EXPECT_DOUBLE_EQ(n5.scheduler.cores[0].freq_ghz, 2.33);

  const auto n6p = nexus6p();
  EXPECT_EQ(n6p.ram_mb, 3072);
  EXPECT_EQ(n6p.scheduler.cores.size(), 8u);  // big.LITTLE octa-core
  EXPECT_NE(n6p.scheduler.cores.front().freq_ghz, n6p.scheduler.cores.back().freq_ghz);
}

TEST(Devices, WatermarksOrdered) {
  for (const auto& device : all_devices()) {
    EXPECT_LT(device.memory.watermark_min, device.memory.watermark_low) << device.name;
    EXPECT_LT(device.memory.watermark_low, device.memory.watermark_high) << device.name;
    EXPECT_LT(device.memory.kernel_reserved, device.memory.total) << device.name;
  }
}

TEST(Devices, GenericDeviceScalesWithRam) {
  const auto small = generic_device(1024, 4, 1.3);
  const auto large = generic_device(6144, 8, 2.2);
  EXPECT_GT(large.memory.trim_moderate, small.memory.trim_moderate);
  EXPECT_GT(large.baseline_cached, small.baseline_cached);
  EXPECT_GT(large.memory.watermark_low, small.memory.watermark_low);
}

TEST(Testbed, BootSettlesWithHealthyMemory) {
  Testbed tb(nexus5());
  tb.boot();
  EXPECT_EQ(tb.memory.level(), PressureLevel::Normal);
  EXPECT_GT(tb.memory.free_pages(), tb.memory.config().watermark_high);
  EXPECT_EQ(tb.am.cached_count(), nexus5().baseline_cached);
}

TEST(Testbed, Nokia1BootsTighterThanNexus6p) {
  Testbed nokia(nokia1());
  nokia.boot();
  Testbed n6p(nexus6p());
  n6p.boot();
  EXPECT_LT(mem::mb_from_pages(nokia.memory.available_pages()),
            mem::mb_from_pages(n6p.memory.available_pages()));
}

TEST(PressureInducerTest, NormalTargetFiresImmediately) {
  Testbed tb(nexus5());
  tb.boot();
  PressureInducer inducer(tb, PressureLevel::Normal);
  bool reached = false;
  inducer.start([&] { reached = true; });
  tb.engine.run_until(tb.engine.now() + sim::msec(10));
  EXPECT_TRUE(reached);
  EXPECT_EQ(inducer.held_pages(), 0);
}

TEST(PressureInducerTest, ReachesModerateOnNokia1) {
  Testbed tb(nokia1());
  tb.boot();
  PressureInducer inducer(tb, PressureLevel::Moderate);
  bool reached = false;
  inducer.start([&] { reached = true; });
  const sim::Time deadline = tb.engine.now() + sim::minutes(5);
  while (!reached && tb.engine.now() < deadline) {
    tb.engine.run_until(tb.engine.now() + sim::sec(1));
  }
  EXPECT_TRUE(reached);
  // The Moderate onTrimMemory signal was delivered at least once (the
  // instantaneous level keeps oscillating with the kill/respawn churn).
  EXPECT_GE(tb.memory.vmstat().trim_signals[static_cast<int>(PressureLevel::Moderate)], 1u);
  EXPECT_GT(inducer.held_pages(), 0);
}

TEST(PressureInducerTest, ReachesCriticalOnNokia1) {
  Testbed tb(nokia1());
  tb.boot();
  PressureInducer inducer(tb, PressureLevel::Critical);
  bool reached = false;
  inducer.start([&] { reached = true; });
  const sim::Time deadline = tb.engine.now() + sim::minutes(5);
  while (!reached && tb.engine.now() < deadline) {
    tb.engine.run_until(tb.engine.now() + sim::sec(1));
  }
  EXPECT_TRUE(reached);
  EXPECT_GE(tb.memory.vmstat().trim_signals[static_cast<int>(PressureLevel::Critical)], 1u);
  // Reaching Critical implies lmkd already culled the cached LRU.
  EXPECT_LE(tb.am.cached_count(), nokia1().memory.trim_low);
  EXPECT_GT(tb.memory.vmstat().kills_lmkd, 3u);
}

TEST(PressureInducerTest, StopReleasesMemory) {
  Testbed tb(nokia1());
  tb.boot();
  PressureInducer inducer(tb, PressureLevel::Moderate);
  inducer.start(nullptr);
  tb.engine.run_until(tb.engine.now() + sim::minutes(2));
  const auto held = inducer.held_pages();
  EXPECT_GT(held, 0);
  const auto anon_before = tb.memory.anon_pages();
  inducer.stop();
  EXPECT_LT(tb.memory.anon_pages(), anon_before);
}

TEST(Experiment, CleanRunOnNexus5At480p30) {
  VideoRunSpec spec;
  spec.device = nexus5();
  spec.height = 480;
  spec.fps = 30;
  spec.asset = video::dubai_flow_motion(16);
  const auto result = run_video(spec);
  EXPECT_FALSE(result.outcome.crashed);
  EXPECT_LT(result.outcome.drop_rate, 0.05);
  EXPECT_EQ(result.start_level, PressureLevel::Normal);
  EXPECT_GT(result.outcome.mean_pss_mb, 100.0);
}

TEST(Experiment, RepeatedRunsAggregate) {
  VideoRunSpec spec;
  spec.device = nexus5();
  spec.height = 360;
  spec.fps = 30;
  spec.asset = video::dubai_flow_motion(12);
  const auto aggregate = run_video_repeated(spec, 3);
  EXPECT_EQ(aggregate.runs(), 3u);
  EXPECT_LT(aggregate.drop_rate().mean, 0.05);
  EXPECT_DOUBLE_EQ(aggregate.crash_rate_percent(), 0.0);
}

TEST(Experiment, ModeratePressureDegradesNokia1) {
  VideoRunSpec spec;
  spec.device = nokia1();
  spec.height = 720;
  spec.fps = 60;
  spec.asset = video::dubai_flow_motion(20);

  spec.pressure = PressureLevel::Normal;
  const auto normal = run_video(spec);
  spec.pressure = PressureLevel::Moderate;
  const auto moderate = run_video(spec);

  EXPECT_GT(moderate.outcome.drop_rate, normal.outcome.drop_rate);
  EXPECT_GE(moderate.start_level, PressureLevel::Moderate);
}

TEST(Experiment, OrganicBackgroundAppsRaisePressure) {
  VideoRunSpec spec;
  spec.device = nokia1();
  spec.height = 480;
  spec.fps = 60;
  spec.asset = video::dubai_flow_motion(20);
  spec.organic_background_apps = 8;
  const auto result = run_video(spec);
  // Eight top-free apps on a 1 GB phone: playback starts under pressure.
  EXPECT_GE(result.start_level, PressureLevel::Moderate);
}

}  // namespace
}  // namespace mvqoe::core
