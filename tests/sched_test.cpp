#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sched/scheduler.hpp"
#include "trace/analysis.hpp"

namespace mvqoe::sched {
namespace {

using sim::msec;
using sim::sec;
using sim::usec;
using trace::ThreadState;

struct Fixture {
  sim::Engine engine;
  trace::Tracer tracer;
};

SchedulerConfig single_core(double freq = 1.0) {
  SchedulerConfig config;
  config.cores = {CoreConfig{freq}};
  config.context_switch_cost_refus = 0.0;
  config.migration_cost_refus = 0.0;
  return config;
}

SchedulerConfig quad_core(double freq = 1.0) {
  SchedulerConfig config;
  config.cores = std::vector<CoreConfig>(4, CoreConfig{freq});
  config.context_switch_cost_refus = 0.0;
  config.migration_cost_refus = 0.0;
  return config;
}

ThreadSpec fair_spec(const std::string& name, ProcessId pid = 100) {
  ThreadSpec spec;
  spec.name = name;
  spec.pid = pid;
  spec.process_name = "proc" + std::to_string(pid);
  return spec;
}

ThreadSpec rt_spec(const std::string& name, int prio, ProcessId pid = 1) {
  ThreadSpec spec;
  spec.name = name;
  spec.pid = pid;
  spec.process_name = "kernel";
  spec.sched_class = SchedClass::Realtime;
  spec.priority = prio;
  return spec;
}

TEST(Scheduler, SingleBurstCompletesAfterWorkOverFrequency) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(2.0));
  const ThreadId tid = sched.create_thread(fair_spec("t"));
  sim::Time done_at = -1;
  sched.run_work(tid, 10000.0, [&] { done_at = fx.engine.now(); });  // 10ms ref work
  fx.engine.run();
  EXPECT_EQ(done_at, usec(5000));  // 2 GHz core: half the reference time
  EXPECT_TRUE(sched.is_idle(tid));
}

TEST(Scheduler, SlowCoreTakesProportionallyLonger) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(0.5));
  const ThreadId tid = sched.create_thread(fair_spec("t"));
  sim::Time done_at = -1;
  sched.run_work(tid, 10000.0, [&] { done_at = fx.engine.now(); });
  fx.engine.run();
  EXPECT_EQ(done_at, usec(20000));
}

TEST(Scheduler, TwoFairThreadsShareOneCoreEqually) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId a = sched.create_thread(fair_spec("a"));
  const ThreadId b = sched.create_thread(fair_spec("b"));
  sim::Time a_done = -1;
  sim::Time b_done = -1;
  sched.run_work(a, 50000.0, [&] { a_done = fx.engine.now(); });
  sched.run_work(b, 50000.0, [&] { b_done = fx.engine.now(); });
  fx.engine.run();
  // Total 100ms of work on one core: both finish near the end, having
  // interleaved; neither can finish before its own 50ms of CPU.
  EXPECT_GE(a_done, msec(50));
  EXPECT_GE(b_done, msec(50));
  EXPECT_LE(std::max(a_done, b_done), msec(101));
  // The one finishing last must finish at ~100ms (work conservation).
  EXPECT_GE(std::max(a_done, b_done), msec(99));
}

TEST(Scheduler, FairShareIsProportionalOverWindow) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId a = sched.create_thread(fair_spec("a"));
  const ThreadId b = sched.create_thread(fair_spec("b"));
  // Both threads continuously re-submit work: measure running time split.
  std::function<void()> loop_a = [&] { sched.run_work(a, 3000.0, loop_a); };
  std::function<void()> loop_b = [&] { sched.run_work(b, 3000.0, loop_b); };
  loop_a();
  loop_b();
  fx.engine.run_until(sec(2));
  fx.tracer.finalize(fx.engine.now());
  const auto ta = trace::state_times(fx.tracer, {a});
  const auto tb = trace::state_times(fx.tracer, {b});
  EXPECT_NEAR(ta.running, 1.0, 0.05);
  EXPECT_NEAR(tb.running, 1.0, 0.05);
}

TEST(Scheduler, RtPreemptsFairImmediately) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId fair = sched.create_thread(fair_spec("fair"));
  const ThreadId rt = sched.create_thread(rt_spec("mmcqd", 50));
  sim::Time rt_done = -1;
  sched.run_work(fair, 100000.0, [] {});
  fx.engine.schedule(msec(10), [&] {
    sched.run_work(rt, 1000.0, [&] { rt_done = fx.engine.now(); });
  });
  fx.engine.run();
  // RT thread finishes 1ms after waking at 10ms, despite the fair hog.
  EXPECT_EQ(rt_done, msec(11));
  EXPECT_EQ(sched.counters(fair).preemptions_suffered, 1u);
}

TEST(Scheduler, PreemptionRecordHasRunAndWaitTimes) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId fair = sched.create_thread(fair_spec("victim"));
  const ThreadId rt = sched.create_thread(rt_spec("mmcqd", 50));
  sched.run_work(fair, 100000.0, [] {});
  fx.engine.schedule(msec(10), [&] { sched.run_work(rt, 2000.0, [] {}); });
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());

  ASSERT_EQ(fx.tracer.preemptions().size(), 1u);
  const auto& rec = fx.tracer.preemptions()[0];
  EXPECT_EQ(rec.victim, fair);
  EXPECT_EQ(rec.preemptor, rt);
  EXPECT_EQ(rec.at, msec(10));
  EXPECT_EQ(rec.preemptor_run, msec(2));
  EXPECT_EQ(rec.victim_wait, msec(2));

  const auto stats = trace::preemption_stats(fx.tracer, {fair}, "mmcqd");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.preemptor_run_seconds, 0.002);
}

TEST(Scheduler, HigherRtPriorityPreemptsLowerRt) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId low = sched.create_thread(rt_spec("low", 10));
  const ThreadId high = sched.create_thread(rt_spec("high", 90));
  sim::Time low_done = -1;
  sim::Time high_done = -1;
  sched.run_work(low, 10000.0, [&] { low_done = fx.engine.now(); });
  fx.engine.schedule(msec(2), [&] {
    sched.run_work(high, 1000.0, [&] { high_done = fx.engine.now(); });
  });
  fx.engine.run();
  EXPECT_EQ(high_done, msec(3));
  EXPECT_EQ(low_done, msec(11));
}

TEST(Scheduler, EqualRtPriorityDoesNotPreempt) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId first = sched.create_thread(rt_spec("first", 50));
  const ThreadId second = sched.create_thread(rt_spec("second", 50));
  sim::Time first_done = -1;
  sim::Time second_done = -1;
  sched.run_work(first, 10000.0, [&] { first_done = fx.engine.now(); });
  fx.engine.schedule(msec(2), [&] {
    sched.run_work(second, 1000.0, [&] { second_done = fx.engine.now(); });
  });
  fx.engine.run();
  EXPECT_EQ(first_done, msec(10));  // runs to completion
  EXPECT_EQ(second_done, msec(11));
}

TEST(Scheduler, IdleCoresPickUpWork) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, quad_core(1.0));
  std::vector<sim::Time> done(4, -1);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) tids.push_back(sched.create_thread(fair_spec("t" + std::to_string(i))));
  for (int i = 0; i < 4; ++i) {
    sched.run_work(tids[static_cast<std::size_t>(i)], 10000.0,
                   [&, i] { done[static_cast<std::size_t>(i)] = fx.engine.now(); });
  }
  fx.engine.run();
  for (const sim::Time t : done) EXPECT_EQ(t, msec(10));  // fully parallel
}

TEST(Scheduler, WorkStealingDrainsLongQueues) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, quad_core(1.0));
  // 8 threads, 4 cores: total 80ms of work should take ~20ms wall.
  std::vector<sim::Time> done;
  std::vector<ThreadId> tids;
  done.resize(8, -1);
  for (int i = 0; i < 8; ++i) tids.push_back(sched.create_thread(fair_spec("t" + std::to_string(i))));
  for (int i = 0; i < 8; ++i) {
    sched.run_work(tids[static_cast<std::size_t>(i)], 10000.0,
                   [&done, &fx, i] { done[static_cast<std::size_t>(i)] = fx.engine.now(); });
  }
  fx.engine.run();
  for (const sim::Time t : done) {
    EXPECT_GE(t, msec(10));
    EXPECT_LE(t, msec(21));
  }
}

TEST(Scheduler, AffinityRestrictsPlacement) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, quad_core(1.0));
  ThreadSpec spec = fair_spec("pinned");
  spec.affinity = 0b0100;  // core 2 only
  const ThreadId tid = sched.create_thread(spec);
  bool checked = false;
  sched.run_work(tid, 10000.0, [] {});
  fx.engine.schedule(msec(1), [&] {
    ASSERT_TRUE(sched.running_core(tid).has_value());
    EXPECT_EQ(sched.running_core(tid).value(), 2u);
    checked = true;
  });
  fx.engine.run();
  EXPECT_TRUE(checked);
}

TEST(Scheduler, NiceWeightSkewsCpuShare) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  ThreadSpec heavy = fair_spec("heavy");
  heavy.priority = -5;  // lower nice -> heavier weight
  const ThreadId a = sched.create_thread(heavy);
  const ThreadId b = sched.create_thread(fair_spec("light"));
  std::function<void()> loop_a = [&] { sched.run_work(a, 3000.0, loop_a); };
  std::function<void()> loop_b = [&] { sched.run_work(b, 3000.0, loop_b); };
  loop_a();
  loop_b();
  fx.engine.run_until(sec(3));
  fx.tracer.finalize(fx.engine.now());
  const auto ta = trace::state_times(fx.tracer, {a});
  const auto tb = trace::state_times(fx.tracer, {b});
  EXPECT_GT(ta.running, tb.running * 1.5);
}

TEST(Scheduler, TerminateRunningThreadFreesCore) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId hog = sched.create_thread(fair_spec("hog"));
  const ThreadId waiter = sched.create_thread(fair_spec("waiter"));
  bool hog_completed = false;
  sim::Time waiter_done = -1;
  sched.run_work(hog, 1000000.0, [&] { hog_completed = true; });
  fx.engine.schedule(msec(1), [&] {
    sched.run_work(waiter, 1000.0, [&] { waiter_done = fx.engine.now(); });
  });
  fx.engine.schedule(msec(2), [&] { sched.terminate(hog); });
  fx.engine.run();
  EXPECT_FALSE(hog_completed);
  EXPECT_FALSE(sched.exists(hog));
  EXPECT_EQ(waiter_done, msec(3));
}

TEST(Scheduler, TerminateProcessKillsAllItsThreads) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, quad_core(1.0));
  const ThreadId a = sched.create_thread(fair_spec("a", 200));
  const ThreadId b = sched.create_thread(fair_spec("b", 200));
  const ThreadId other = sched.create_thread(fair_spec("c", 300));
  sched.run_work(a, 50000.0, [] {});
  sched.run_work(b, 50000.0, [] {});
  sched.run_work(other, 5000.0, [] {});
  fx.engine.schedule(msec(1), [&] { sched.terminate_process(200); });
  fx.engine.run();
  EXPECT_FALSE(sched.exists(a));
  EXPECT_FALSE(sched.exists(b));
  EXPECT_TRUE(sched.exists(other));
}

TEST(Scheduler, SleepForWakesAtRequestedTime) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId tid = sched.create_thread(fair_spec("sleeper"));
  sim::Time woke = -1;
  sched.sleep_for(tid, msec(25), [&] { woke = fx.engine.now(); });
  fx.engine.run();
  EXPECT_EQ(woke, msec(25));
}

TEST(Scheduler, SleepWakeSkippedIfThreadTerminated) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId tid = sched.create_thread(fair_spec("sleeper"));
  bool woke = false;
  sched.sleep_for(tid, msec(25), [&] { woke = true; });
  fx.engine.schedule(msec(1), [&] { sched.terminate(tid); });
  fx.engine.run();
  EXPECT_FALSE(woke);
}

TEST(Scheduler, BlockedIoStateIsAccounted) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId tid = sched.create_thread(fair_spec("io"));
  sched.run_work(tid, 1000.0, [&] {
    sched.mark_blocked_io(tid);
    fx.engine.schedule(msec(10), [&] { sched.run_work(tid, 1000.0, [] {}); });
  });
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());
  const auto times = trace::state_times(fx.tracer, {tid});
  EXPECT_NEAR(times.blocked_io, 0.010, 1e-6);
  EXPECT_NEAR(times.running, 0.002, 1e-6);
}

TEST(Scheduler, ContextSwitchCostSlowsContendedWorkload) {
  Fixture fx;
  SchedulerConfig config = single_core(1.0);
  config.context_switch_cost_refus = 500.0;  // exaggerated for visibility
  Scheduler sched(fx.engine, fx.tracer, config);
  const ThreadId a = sched.create_thread(fair_spec("a"));
  const ThreadId b = sched.create_thread(fair_spec("b"));
  sim::Time last_done = -1;
  auto done = [&] { last_done = fx.engine.now(); };
  sched.run_work(a, 30000.0, done);
  sched.run_work(b, 30000.0, done);
  fx.engine.run();
  EXPECT_GT(last_done, msec(61));  // 60ms of real work + switching overhead
}

TEST(Scheduler, MigrationsAreCounted) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, quad_core(1.0));
  const ThreadId tid = sched.create_thread(fair_spec("wanderer"));
  // Load all cores with hogs, then repeatedly wake the wanderer; it will
  // be placed on whichever core frees up, migrating along the way.
  std::vector<ThreadId> hogs;
  for (int i = 0; i < 4; ++i) {
    const ThreadId hog = sched.create_thread(fair_spec("hog" + std::to_string(i), 300));
    sched.run_work(hog, 500000.0, [] {});
    hogs.push_back(hog);
  }
  std::function<void()> wander = [&] {
    sched.run_work(tid, 2000.0, [&] { sched.sleep_for(tid, msec(3), wander); });
  };
  wander();
  fx.engine.run_until(sec(1));
  EXPECT_GT(sched.counters(tid).context_switches, 10u);
}

TEST(Scheduler, RunnableStateRecordedWhileWaiting) {
  Fixture fx;
  Scheduler sched(fx.engine, fx.tracer, single_core(1.0));
  const ThreadId hog = sched.create_thread(fair_spec("hog"));
  const ThreadId waiter = sched.create_thread(fair_spec("waiter"));
  sched.run_work(hog, 50000.0, [] {});
  sched.run_work(waiter, 1000.0, [] {});
  fx.engine.run();
  fx.tracer.finalize(fx.engine.now());
  const auto times = trace::state_times(fx.tracer, {waiter});
  EXPECT_GT(times.runnable, 0.0);
}

}  // namespace
}  // namespace mvqoe::sched
