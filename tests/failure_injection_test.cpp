// Failure-injection and edge-case tests: throttled links, mid-run
// process death, rung churn, pathological configurations — the paths a
// downstream user will hit the day they change a default.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "proc/activity_manager.hpp"
#include "trace/analysis.hpp"

namespace mvqoe {
namespace {

using mem::PressureLevel;
using sim::sec;

struct DeviceFixture {
  core::Testbed testbed{core::nexus5(), 7};
  DeviceFixture() { testbed.boot(); }

  video::SessionConfig session_config(int height, int fps, int duration) {
    video::SessionConfig config;
    config.asset = video::dubai_flow_motion(duration);
    config.initial_rung = *config.ladder.find(height, fps);
    config.seed = 7;
    return config;
  }
};

TEST(FailureInjection, ThrottledLinkStallsDecoderWithoutCrashing) {
  DeviceFixture fx;
  // 0.8 Mbps link vs a 2.5 Mbps 480p30 stream: downloads cannot keep up,
  // the decoder starves, and late frames drop — but nothing crashes and
  // accounting stays exact.
  fx.testbed.link.set_rate_mbps(0.8);
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer,
                              fx.session_config(480, 30, 20));
  bool finished = false;
  session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(240));
  EXPECT_TRUE(finished);
  EXPECT_FALSE(session.metrics().crashed);
  const auto& metrics = session.metrics();
  EXPECT_EQ(metrics.frames_presented + metrics.frames_dropped, 20 * 30);
  EXPECT_GT(metrics.frames_dropped, 0);
}

TEST(FailureInjection, ClientProcessExitMidRunStopsSessionQuietly) {
  DeviceFixture fx;
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer,
                              fx.session_config(480, 30, 30));
  const auto pid = fx.testbed.am.next_pid();
  session.start(pid);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(10));
  // User swipes the app away: voluntary exit, not an lmkd kill.
  fx.testbed.memory.exit_process(pid);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(10));
  // No crash flag (no kill callback), no further frame activity.
  EXPECT_FALSE(session.metrics().crashed);
  const auto presented = session.metrics().frames_presented;
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(5));
  EXPECT_EQ(session.metrics().frames_presented, presented);
}

TEST(FailureInjection, RungChurnEverySegmentStaysConsistent) {
  DeviceFixture fx;
  auto config = fx.session_config(1080, 60, 24);
  // Alternate rungs on every segment: exercises decoder-pool realloc and
  // per-segment frame-count changes.
  std::vector<video::ScheduledAbr::Step> steps;
  const int rungs[][2] = {{1080, 60}, {240, 24}, {720, 48}, {360, 30}, {1080, 60}, {480, 24}};
  for (int i = 0; i < 6; ++i) {
    steps.push_back({i, *config.ladder.find(rungs[i][0], rungs[i][1])});
  }
  video::ScheduledAbr abr(steps);
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer, config, &abr);
  bool finished = false;
  session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(90));
  ASSERT_TRUE(finished);
  // Frame totals must equal the sum over segments of fps * segment_s.
  std::int64_t expected = 0;
  for (const auto& rung : session.metrics().rung_history) expected += rung.fps * 4;
  EXPECT_EQ(session.metrics().frames_presented + session.metrics().frames_dropped, expected);
}

TEST(FailureInjection, ZeroZramDeviceStillWorks) {
  // A swapless device (like the real Nexus 5): reclaim can only evict
  // file pages; pressure escalates to kills faster.
  core::DeviceProfile device = core::nexus5();
  device.memory.zram_capacity = 0;
  core::VideoRunSpec spec;
  spec.device = device;
  spec.height = 480;
  spec.fps = 30;
  spec.pressure = PressureLevel::Moderate;
  spec.asset = video::dubai_flow_motion(16);
  const auto result = core::run_video(spec);
  // Must complete (possibly with drops/crash) without violating accounting.
  EXPECT_GE(result.metrics.frames_presented, 0);
}

TEST(FailureInjection, SingleCoreDeviceSerializesEverything) {
  core::DeviceProfile device = core::nokia1();
  device.scheduler.cores = {sched::CoreConfig{1.1}};
  core::VideoRunSpec spec;
  spec.device = device;
  spec.height = 240;
  spec.fps = 30;
  spec.asset = video::dubai_flow_motion(12);
  const auto result = core::run_video(spec);
  EXPECT_FALSE(result.outcome.crashed);
  // One 1.1 GHz core running client + system: playable at 240p30 but the
  // schedule is tight; accounting must still be exact.
  EXPECT_EQ(result.metrics.frames_presented + result.metrics.frames_dropped, 12 * 30);
}

TEST(FailureInjection, KillStormLeavesRegistryConsistent) {
  DeviceFixture fx;
  auto& memory = fx.testbed.memory;
  // Kill every killable process in a tight loop.
  for (int i = 0; i < 64; ++i) {
    const auto victim = memory.registry().pick_victim(mem::OomAdj::kForeground);
    if (!victim.has_value()) break;
    memory.kill_process(*victim);
  }
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(1));
  for (const auto* process : memory.registry().all()) {
    EXPECT_GE(process->anon_resident, 0);
    EXPECT_GE(process->file_resident, 0);
  }
  EXPECT_GE(memory.free_pages(), 0);
}

TEST(FailureInjection, RespawnerRefillsAfterMassKill) {
  DeviceFixture fx;
  auto& memory = fx.testbed.memory;
  const int before = memory.registry().cached_count();
  for (int i = 0; i < before; ++i) {
    const auto victim = memory.registry().pick_victim(mem::OomAdj::kCached);
    if (victim.has_value()) memory.kill_process(*victim);
  }
  EXPECT_EQ(memory.registry().cached_count(), 0);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(120));
  EXPECT_GT(memory.registry().cached_count(), before / 2);
}

TEST(FailureInjection, PressureInducerUnreachableTargetIsBounded) {
  // An 8 GB device cannot be driven to Critical by a 2x-RAM-capped
  // allocator before the experiment times out; the inducer must stay
  // bounded and the system functional.
  core::Testbed testbed(core::generic_device(8192, 8, 2.5), 3);
  testbed.boot();
  core::PressureInducer inducer(testbed, PressureLevel::Critical);
  inducer.start(nullptr);
  testbed.engine.run_until(testbed.engine.now() + sec(60));
  EXPECT_LE(inducer.held_pages(), 2 * testbed.profile().memory.total);
  EXPECT_GE(testbed.memory.free_pages(), 0);
}

TEST(FailureInjection, StartupUnderCriticalEitherPlaysOrCrashesCleanly) {
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 1080;
  spec.fps = 60;
  spec.pressure = PressureLevel::Critical;
  spec.asset = video::dubai_flow_motion(16);
  const auto result = core::run_video(spec);
  // Whatever happens, the outcome must be classified: crashed or all
  // frames accounted.
  if (!result.outcome.crashed) {
    EXPECT_EQ(result.metrics.frames_presented + result.metrics.frames_dropped, 16 * 60);
  } else {
    EXPECT_GE(result.outcome.drop_rate, 0.0);
    EXPECT_LE(result.outcome.drop_rate, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Table-driven fault scenarios: every scenario runs a real session on a
// booted Nexus 5 with a FaultPlan armed against it, and must end with the
// frame identity intact — presented + dropped + lost_to_kill equals the
// asset's frame count — with no crash, no abort, no watchdog violation.
// ---------------------------------------------------------------------------

struct FaultScenario {
  const char* name;
  int duration_s;
  double rate_mbps;             // 0 = keep the 80 Mbps default
  sim::Time buffer_capacity;    // 0 = keep the 60 s default
  sim::Time outage_at;          // -1 = no outage
  sim::Time outage_duration;
  sim::Time kill_at;            // -1 = no kill
  int expected_relaunches;
  int min_rebuffer_events;
};

TEST(FaultScenarios, TableDrivenRecoveryKeepsFrameAccountingExact) {
  const FaultScenario scenarios[] = {
      // Outage from t=0: the very first segment download freezes mid-wire
      // during startup, then resumes; startup is late but playback runs.
      {"outage-during-startup", 16, 0.0, 0, 0, sec(3), -1, 0, 0},
      // Paced link + small buffer so downloads are still live at t=8 when
      // a 5 s steady-state outage hits.
      {"outage-steady-state", 20, 4.0, sec(8), sec(8), sec(5), -1, 0, 0},
      // Kill at 500 ms: mid-launch, before any frame or even the first
      // segment. Relaunch replays the whole asset; nothing is lost.
      {"kill-during-startup", 12, 0.0, 0, -1, 0, sim::msec(500), 1, 0},
      // Kill in steady playback: buffered segments and the partially
      // played one are forfeited, playback resumes at the next boundary.
      {"kill-steady-state", 16, 0.0, 0, -1, 0, sec(8), 1, 0},
      // A long outage drains the 8 s buffer into a rebuffer stall, and
      // the kill lands while the session is starved.
      {"kill-during-rebuffer", 24, 4.0, sec(8), sec(6), sec(12), sec(15), 1, 1},
  };

  for (const FaultScenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    DeviceFixture fx;
    if (sc.rate_mbps > 0.0) fx.testbed.link.set_rate_mbps(sc.rate_mbps);

    auto config = fx.session_config(480, 30, sc.duration_s);
    if (sc.buffer_capacity > 0) config.buffer_capacity = sc.buffer_capacity;
    config.recovery.relaunch_on_kill = true;
    config.recovery.max_relaunches = 1;
    config.next_pid = [&fx] { return fx.testbed.am.next_pid(); };

    fault::FaultPlan plan;
    if (sc.outage_at >= 0) plan.link_outages.push_back({sc.outage_at, sc.outage_duration});
    if (sc.kill_at >= 0) plan.kills.push_back({sc.kill_at, 0});

    fault::InvariantWatchdog watchdog(fx.testbed.engine, fault::WatchdogConfig{},
                                      &fx.testbed.memory, &fx.testbed.tracer);
    watchdog.start();

    video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                                fx.testbed.link, fx.testbed.tracer, config);

    fault::FaultTargets targets;
    targets.engine = &fx.testbed.engine;
    targets.link = &fx.testbed.link;
    targets.storage = &fx.testbed.storage;
    targets.scheduler = &fx.testbed.scheduler;
    targets.memory = &fx.testbed.memory;
    targets.tracer = &fx.testbed.tracer;
    fault::FaultInjector injector(targets, plan);
    injector.set_kill_target([&session] { return session.pid(); });
    injector.arm(fx.testbed.engine.now());

    bool finished = false;
    session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
    const sim::Time horizon = fx.testbed.engine.now() + sec(240);
    while (!finished && fx.testbed.engine.now() < horizon) {
      fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(1));
    }
    injector.disarm();
    watchdog.check_now();
    watchdog.stop();

    const auto& metrics = session.metrics();
    ASSERT_TRUE(finished);
    EXPECT_FALSE(metrics.crashed);
    EXPECT_FALSE(metrics.aborted);
    EXPECT_EQ(metrics.relaunches, sc.expected_relaunches);
    EXPECT_EQ(static_cast<int>(metrics.kill_times.size()), sc.expected_relaunches);
    EXPECT_GE(metrics.rebuffer_events, sc.min_rebuffer_events);
    EXPECT_EQ(metrics.frames_presented + metrics.frames_dropped + metrics.frames_lost_to_kill,
              static_cast<std::int64_t>(sc.duration_s) * 30)
        << "frame identity broken: presented=" << metrics.frames_presented
        << " dropped=" << metrics.frames_dropped
        << " lost_to_kill=" << metrics.frames_lost_to_kill;
    EXPECT_TRUE(watchdog.ok()) << (watchdog.ok() ? "" : watchdog.violations().front().what);
    if (sc.kill_at >= 0) {
      EXPECT_EQ(injector.kills_injected(), 1u);
      EXPECT_GT(metrics.relaunch_downtime, 0);
    }
  }
}

TEST(FaultScenarios, StorageErrorWindowDuringPressureDegradesButCompletes) {
  // Moderate pressure keeps kswapd reclaiming, so mmcqd is busy with
  // refault reads and writeback exactly when the degradation window
  // injects 6x latency and 40% transient errors. The device-side retry
  // path must absorb every error; the run must still classify cleanly.
  core::VideoRunSpec spec;
  spec.device = core::nexus5();
  spec.height = 480;
  spec.fps = 30;
  spec.pressure = PressureLevel::Moderate;
  spec.asset = video::dubai_flow_motion(16);
  spec.fault_plan.storage_degradations.push_back({sec(2), sec(12), 6.0, 0.4});
  spec.run_watchdog = true;
  core::VideoExperiment experiment(spec);
  const auto result = experiment.run();
  EXPECT_NE(result.status, core::RunStatus::TimedOut);
  EXPECT_TRUE(result.watchdog_violations.empty());
  const auto& counters = experiment.testbed().storage.counters();
  EXPECT_GT(counters.io_errors, 0u);
  EXPECT_GE(counters.io_retries, counters.io_errors);
  // Window closed: storage back to nominal.
  EXPECT_DOUBLE_EQ(experiment.testbed().storage.latency_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(experiment.testbed().storage.error_rate(), 0.0);
}

TEST(FaultScenarios, AcceptanceOutagePlusKillRelaunchesOnceDeterministically) {
  // The ISSUE acceptance scenario: Nexus 5, 60 s 480p30 video, 5 s link
  // outage at t=10 s and an lmkd-style kill at t=30 s with the relaunch
  // path enabled. The session must complete without crash or hang,
  // relaunch exactly once, keep the frame identity exact, and replay
  // byte-identically for the same seed.
  const auto run_once = [] {
    core::VideoRunSpec spec;
    spec.device = core::nexus5();
    spec.height = 480;
    spec.fps = 30;
    spec.seed = 11;
    spec.asset = video::dubai_flow_motion(60);
    spec.fault_plan.link_outages.push_back({sec(10), sec(5)});
    spec.fault_plan.kills.push_back({sec(30), 0});
    video::RecoveryConfig recovery;
    recovery.relaunch_on_kill = true;
    spec.recovery = recovery;
    spec.run_watchdog = true;
    return core::run_video(spec);
  };

  const auto first = run_once();
  EXPECT_EQ(first.status, core::RunStatus::Completed) << first.failure_reason;
  EXPECT_FALSE(first.metrics.crashed);
  EXPECT_EQ(first.metrics.relaunches, 1);
  ASSERT_EQ(first.metrics.kill_times.size(), 1u);
  EXPECT_GT(first.metrics.frames_lost_to_kill, 0);
  EXPECT_EQ(first.metrics.frames_presented + first.metrics.frames_dropped +
                first.metrics.frames_lost_to_kill,
            60 * 30);
  EXPECT_TRUE(first.watchdog_violations.empty());

  const auto second = run_once();
  EXPECT_EQ(second.metrics.frames_presented, first.metrics.frames_presented);
  EXPECT_EQ(second.metrics.frames_dropped, first.metrics.frames_dropped);
  EXPECT_EQ(second.metrics.frames_lost_to_kill, first.metrics.frames_lost_to_kill);
  EXPECT_EQ(second.metrics.kill_times, first.metrics.kill_times);
  EXPECT_EQ(second.metrics.relaunch_downtime, first.metrics.relaunch_downtime);
  EXPECT_EQ(second.metrics.rebuffer_events, first.metrics.rebuffer_events);
  EXPECT_EQ(second.metrics.presented_per_second, first.metrics.presented_per_second);
  EXPECT_EQ(second.metrics.dropped_per_second, first.metrics.dropped_per_second);
  EXPECT_EQ(second.metrics.playback_start, first.metrics.playback_start);
  EXPECT_EQ(second.metrics.finished_at, first.metrics.finished_at);
}

TEST(FaultScenarios, RetryBudgetExhaustionAbortsInsteadOfHanging) {
  // A permanent outage starting before the first segment: every retry
  // times out, the budget exhausts, and the session must end as Aborted
  // with a structured reason — never hang until the horizon.
  DeviceFixture fx;
  auto config = fx.session_config(480, 30, 12);
  config.recovery.max_segment_retries = 2;
  config.recovery.retry_backoff_initial = sim::msec(100);
  config.recovery.download_watchdog = sec(2);
  fx.testbed.link.set_down(true);
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer, config);
  bool finished = false;
  session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(120));
  ASSERT_TRUE(finished);
  const auto& metrics = session.metrics();
  EXPECT_TRUE(metrics.aborted);
  EXPECT_FALSE(metrics.abort_reason.empty());
  EXPECT_GE(metrics.download_timeouts, 3);  // initial attempt + 2 retries
  EXPECT_EQ(metrics.segment_retries, 2);
  EXPECT_FALSE(metrics.crashed);
}

}  // namespace
}  // namespace mvqoe
