// Failure-injection and edge-case tests: throttled links, mid-run
// process death, rung churn, pathological configurations — the paths a
// downstream user will hit the day they change a default.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "proc/activity_manager.hpp"
#include "trace/analysis.hpp"

namespace mvqoe {
namespace {

using mem::PressureLevel;
using sim::sec;

struct DeviceFixture {
  core::Testbed testbed{core::nexus5(), 7};
  DeviceFixture() { testbed.boot(); }

  video::SessionConfig session_config(int height, int fps, int duration) {
    video::SessionConfig config;
    config.asset = video::dubai_flow_motion(duration);
    config.initial_rung = *config.ladder.find(height, fps);
    config.seed = 7;
    return config;
  }
};

TEST(FailureInjection, ThrottledLinkStallsDecoderWithoutCrashing) {
  DeviceFixture fx;
  // 0.8 Mbps link vs a 2.5 Mbps 480p30 stream: downloads cannot keep up,
  // the decoder starves, and late frames drop — but nothing crashes and
  // accounting stays exact.
  fx.testbed.link.set_rate_mbps(0.8);
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer,
                              fx.session_config(480, 30, 20));
  bool finished = false;
  session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(240));
  EXPECT_TRUE(finished);
  EXPECT_FALSE(session.metrics().crashed);
  const auto& metrics = session.metrics();
  EXPECT_EQ(metrics.frames_presented + metrics.frames_dropped, 20 * 30);
  EXPECT_GT(metrics.frames_dropped, 0);
}

TEST(FailureInjection, ClientProcessExitMidRunStopsSessionQuietly) {
  DeviceFixture fx;
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer,
                              fx.session_config(480, 30, 30));
  const auto pid = fx.testbed.am.next_pid();
  session.start(pid);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(10));
  // User swipes the app away: voluntary exit, not an lmkd kill.
  fx.testbed.memory.exit_process(pid);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(10));
  // No crash flag (no kill callback), no further frame activity.
  EXPECT_FALSE(session.metrics().crashed);
  const auto presented = session.metrics().frames_presented;
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(5));
  EXPECT_EQ(session.metrics().frames_presented, presented);
}

TEST(FailureInjection, RungChurnEverySegmentStaysConsistent) {
  DeviceFixture fx;
  auto config = fx.session_config(1080, 60, 24);
  // Alternate rungs on every segment: exercises decoder-pool realloc and
  // per-segment frame-count changes.
  std::vector<video::ScheduledAbr::Step> steps;
  const int rungs[][2] = {{1080, 60}, {240, 24}, {720, 48}, {360, 30}, {1080, 60}, {480, 24}};
  for (int i = 0; i < 6; ++i) {
    steps.push_back({i, *config.ladder.find(rungs[i][0], rungs[i][1])});
  }
  video::ScheduledAbr abr(steps);
  video::VideoSession session(fx.testbed.engine, fx.testbed.scheduler, fx.testbed.memory,
                              fx.testbed.link, fx.testbed.tracer, config, &abr);
  bool finished = false;
  session.start(fx.testbed.am.next_pid(), [&finished] { finished = true; });
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(90));
  ASSERT_TRUE(finished);
  // Frame totals must equal the sum over segments of fps * segment_s.
  std::int64_t expected = 0;
  for (const auto& rung : session.metrics().rung_history) expected += rung.fps * 4;
  EXPECT_EQ(session.metrics().frames_presented + session.metrics().frames_dropped, expected);
}

TEST(FailureInjection, ZeroZramDeviceStillWorks) {
  // A swapless device (like the real Nexus 5): reclaim can only evict
  // file pages; pressure escalates to kills faster.
  core::DeviceProfile device = core::nexus5();
  device.memory.zram_capacity = 0;
  core::VideoRunSpec spec;
  spec.device = device;
  spec.height = 480;
  spec.fps = 30;
  spec.pressure = PressureLevel::Moderate;
  spec.asset = video::dubai_flow_motion(16);
  const auto result = core::run_video(spec);
  // Must complete (possibly with drops/crash) without violating accounting.
  EXPECT_GE(result.metrics.frames_presented, 0);
}

TEST(FailureInjection, SingleCoreDeviceSerializesEverything) {
  core::DeviceProfile device = core::nokia1();
  device.scheduler.cores = {sched::CoreConfig{1.1}};
  core::VideoRunSpec spec;
  spec.device = device;
  spec.height = 240;
  spec.fps = 30;
  spec.asset = video::dubai_flow_motion(12);
  const auto result = core::run_video(spec);
  EXPECT_FALSE(result.outcome.crashed);
  // One 1.1 GHz core running client + system: playable at 240p30 but the
  // schedule is tight; accounting must still be exact.
  EXPECT_EQ(result.metrics.frames_presented + result.metrics.frames_dropped, 12 * 30);
}

TEST(FailureInjection, KillStormLeavesRegistryConsistent) {
  DeviceFixture fx;
  auto& memory = fx.testbed.memory;
  // Kill every killable process in a tight loop.
  for (int i = 0; i < 64; ++i) {
    const auto victim = memory.registry().pick_victim(mem::OomAdj::kForeground);
    if (!victim.has_value()) break;
    memory.kill_process(*victim);
  }
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(1));
  for (const auto* process : memory.registry().all()) {
    EXPECT_GE(process->anon_resident, 0);
    EXPECT_GE(process->file_resident, 0);
  }
  EXPECT_GE(memory.free_pages(), 0);
}

TEST(FailureInjection, RespawnerRefillsAfterMassKill) {
  DeviceFixture fx;
  auto& memory = fx.testbed.memory;
  const int before = memory.registry().cached_count();
  for (int i = 0; i < before; ++i) {
    const auto victim = memory.registry().pick_victim(mem::OomAdj::kCached);
    if (victim.has_value()) memory.kill_process(*victim);
  }
  EXPECT_EQ(memory.registry().cached_count(), 0);
  fx.testbed.engine.run_until(fx.testbed.engine.now() + sec(120));
  EXPECT_GT(memory.registry().cached_count(), before / 2);
}

TEST(FailureInjection, PressureInducerUnreachableTargetIsBounded) {
  // An 8 GB device cannot be driven to Critical by a 2x-RAM-capped
  // allocator before the experiment times out; the inducer must stay
  // bounded and the system functional.
  core::Testbed testbed(core::generic_device(8192, 8, 2.5), 3);
  testbed.boot();
  core::PressureInducer inducer(testbed, PressureLevel::Critical);
  inducer.start(nullptr);
  testbed.engine.run_until(testbed.engine.now() + sec(60));
  EXPECT_LE(inducer.held_pages(), 2 * testbed.profile().memory.total);
  EXPECT_GE(testbed.memory.free_pages(), 0);
}

TEST(FailureInjection, StartupUnderCriticalEitherPlaysOrCrashesCleanly) {
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 1080;
  spec.fps = 60;
  spec.pressure = PressureLevel::Critical;
  spec.asset = video::dubai_flow_motion(16);
  const auto result = core::run_video(spec);
  // Whatever happens, the outcome must be classified: crashed or all
  // frames accounted.
  if (!result.outcome.crashed) {
    EXPECT_EQ(result.metrics.frames_presented + result.metrics.frames_dropped, 16 * 60);
  } else {
    EXPECT_GE(result.outcome.drop_rate, 0.0);
    EXPECT_LE(result.outcome.drop_rate, 1.0);
  }
}

}  // namespace
}  // namespace mvqoe
