// Figure 14: instantaneous frame rate and lmkd CPU utilization during a
// video session that crashed due to high memory pressure (Nokia 1).
// Paper: the video plays, then at the crash point there is a spike in
// lmkd's CPU utilization — lmkd waking up to kill the client.
//
// The session starts under light conditions and the MP-Simulator-style
// allocator ramps toward Critical *during* playback, so the crash lands
// mid-video as in the paper's example run.
#include "bench_util.hpp"
#include "core/pressure_inducer.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 14 - rendered FPS and lmkd CPU during a crashing session (Nokia 1)",
                "Waheed et al., CoNEXT'22, Fig. 14");
  const int duration = bench::video_duration_s(90);

  core::Testbed testbed(core::nokia1(), 5);
  testbed.boot();

  video::SessionConfig config;
  config.asset = video::dubai_flow_motion(duration);
  config.initial_rung = *config.ladder.find(480, 60);
  config.seed = 5;
  video::VideoSession session(testbed.engine, testbed.scheduler, testbed.memory, testbed.link,
                              testbed.tracer, config);
  bool finished = false;
  session.start(testbed.am.next_pid(), [&finished] { finished = true; });

  // Let playback settle, then ramp pressure mid-video.
  core::PressureInducer inducer(testbed, mem::PressureLevel::Critical);
  testbed.engine.schedule(sim::sec(20), [&inducer] { inducer.start(nullptr); });

  const sim::Time horizon = testbed.engine.now() + sim::sec(duration * 3);
  while (!finished && testbed.engine.now() < horizon) {
    testbed.engine.run_until(testbed.engine.now() + sim::sec(1));
  }
  testbed.tracer.finalize(testbed.engine.now());

  const auto& metrics = session.metrics();
  const auto lmkd_cpu =
      trace::running_fraction_per_second(testbed.tracer, testbed.memory.lmkd_tid());
  const auto start_second = static_cast<std::size_t>(
      std::max<sim::Time>(0, metrics.playback_start) / sim::sec(1));

  bench::section("timeline (media-second, rendered FPS, lmkd CPU%)");
  const std::size_t seconds = std::max(metrics.presented_per_second.size(),
                                       metrics.dropped_per_second.size());
  for (std::size_t second = 0; second < seconds; second += 2) {
    const std::size_t wall = start_second + second;
    const double lmkd = wall < lmkd_cpu.size() ? 100.0 * lmkd_cpu[wall] : 0.0;
    const int fps = second < metrics.presented_per_second.size()
                        ? metrics.presented_per_second[second]
                        : 0;
    std::printf("  t=%3zus  fps=%3d |%-20s  lmkd=%5.1f%% |%s\n", second, fps,
                stats::ascii_bar(fps / 60.0, 20).c_str(), lmkd,
                stats::ascii_bar(lmkd / 100.0, 12).c_str());
  }

  if (!metrics.crashed) {
    std::printf("\n(no crash this run — pressure ramp too slow for this seed)\n");
    return 0;
  }
  const auto crash_second = static_cast<std::size_t>(metrics.crash_time / sim::sec(1));
  std::printf("\ncrash at wall t=%.1fs (media-second ~%zu)\n",
              sim::to_seconds(metrics.crash_time),
              crash_second > start_second ? crash_second - start_second : 0);

  // Paper's qualitative claim: lmkd spikes at the crash vs a quiet
  // baseline during stable playback.
  double near_crash = 0.0;
  double baseline = 0.0;
  std::size_t baseline_n = 0;
  for (std::size_t second = start_second; second < lmkd_cpu.size(); ++second) {
    if (second + 4 >= crash_second && second <= crash_second + 1) {
      near_crash = std::max(near_crash, lmkd_cpu[second]);
    } else if (second < start_second + 15) {
      baseline += lmkd_cpu[second];
      ++baseline_n;
    }
  }
  bench::section("shape check");
  const double baseline_mean = baseline_n > 0 ? baseline / baseline_n : 0.0;
  std::printf("  lmkd CPU near crash: %.3f%%, early-playback baseline: %.3f%% -> spike %s\n",
              100.0 * near_crash, 100.0 * baseline_mean,
              near_crash > baseline_mean * 2.0 + 1e-6 ? "PRESENT" : "absent");
  return 0;
}
