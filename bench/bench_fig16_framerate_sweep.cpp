// Figure 16: impact of varying the encoded frame rate (24/48/60) at
// three resolutions on the Nokia 1. Paper: at 1080p, rendered FPS is
// zero when encoded at 60 FPS but losses drop to about zero at 24 FPS —
// high resolution can be preserved by lowering the frame rate.
//
// The three per-resolution sessions are independent (own Engine/Testbed
// each), so they fan out across the batch runner; --jobs 1 reproduces
// the identical numbers serially.
#include <array>

#include "bench_util.hpp"

namespace {

struct HeightResult {
  int height = 0;
  std::array<double, 3> rendered_fps{};  // phases encoded at 60/48/24
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 16 - encoded frame rate vs rendered FPS per resolution (Nokia 1)",
                "Waheed et al., CoNEXT'22, Fig. 16 / Sec. 6");
  const int duration = bench::video_duration_s(48);
  const int jobs = bench::jobs_from_args(argc, argv);
  const std::vector<int> heights = {480, 720, 1080};
  constexpr int kEncoded[] = {60, 48, 24};

  const auto batch = runner::run_batch(heights.size(), jobs, [&](std::size_t i) {
    core::VideoRunSpec spec;
    spec.device = core::nokia1();
    spec.height = heights[i];
    spec.fps = 60;
    spec.asset = video::dubai_flow_motion(duration);
    spec.seed = 5;

    // Scripted frame-rate schedule: thirds of the session.
    const video::BitrateLadder ladder = video::BitrateLadder::youtube();
    const int segments = duration / 4;
    std::vector<video::ScheduledAbr::Step> steps;
    steps.push_back({0, *ladder.find(spec.height, 60)});
    steps.push_back({segments / 3, *ladder.find(spec.height, 48)});
    steps.push_back({2 * segments / 3, *ladder.find(spec.height, 24)});
    video::ScheduledAbr abr(steps);
    spec.abr = &abr;

    core::VideoExperiment experiment(spec);
    const auto result = experiment.run();
    const auto& series = result.metrics.presented_per_second;

    HeightResult out;
    out.height = spec.height;
    const std::size_t phase = series.size() / 3;
    for (int p = 0; p < 3; ++p) {
      double total = 0.0;
      std::size_t count = 0;
      for (std::size_t s = phase * static_cast<std::size_t>(p);
           s < std::min(series.size(), phase * static_cast<std::size_t>(p + 1)); ++s) {
        total += series[s];
        ++count;
      }
      out.rendered_fps[static_cast<std::size_t>(p)] = count > 0 ? total / count : 0.0;
    }
    return out;
  });

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "fig16_framerate_sweep")
      .field("jobs", batch.jobs_used)
      .field("duration_s", duration);
  json.key("resolutions").begin_array();
  for (const auto& slot : batch.runs) {
    if (!slot.ok) {
      bench::section("run failed: " + slot.error);
      continue;
    }
    const HeightResult& r = slot.value;
    bench::section(std::to_string(r.height) + "p - one session switching 60 -> 48 -> 24 FPS");
    json.begin_object().field("height", r.height).key("phases").begin_array();
    for (int p = 0; p < 3; ++p) {
      const double rendered = r.rendered_fps[static_cast<std::size_t>(p)];
      std::printf("  encoded %2d FPS -> rendered %5.1f FPS |%s\n", kEncoded[p], rendered,
                  stats::ascii_bar(rendered / 60.0, 30).c_str());
      json.begin_object()
          .field("encoded_fps", kEncoded[p])
          .field("rendered_fps", rendered)
          .end_object();
    }
    json.end_array().end_object();
  }
  json.end_array().end_object();
  const std::string path = runner::bench_json_path("fig16_framerate_sweep");
  if (runner::write_file(path, json.str())) {
    std::printf("\nmachine-readable: %s\n", path.c_str());
  }

  std::printf("\nShape check (paper): at 1080p the rendered FPS is ~0 at 60 FPS encoding and\n"
              "recovers to ~the encoded rate at 24 FPS — resolution can be preserved by\n"
              "adapting the frame rate.\n");
  return 0;
}
