// Figure 16: impact of varying the encoded frame rate (24/48/60) at
// three resolutions on the Nokia 1. Paper: at 1080p, rendered FPS is
// zero when encoded at 60 FPS but losses drop to about zero at 24 FPS —
// high resolution can be preserved by lowering the frame rate.
#include "bench_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 16 - encoded frame rate vs rendered FPS per resolution (Nokia 1)",
                "Waheed et al., CoNEXT'22, Fig. 16 / Sec. 6");
  const int duration = bench::video_duration_s(48);

  for (const int height : {480, 720, 1080}) {
    bench::section(std::to_string(height) + "p - one session switching 60 -> 48 -> 24 FPS");
    core::VideoRunSpec spec;
    spec.device = core::nokia1();
    spec.height = height;
    spec.fps = 60;
    spec.asset = video::dubai_flow_motion(duration);
    spec.seed = 5;

    // Scripted frame-rate schedule: thirds of the session.
    const video::BitrateLadder ladder = video::BitrateLadder::youtube();
    const int segments = duration / 4;
    std::vector<video::ScheduledAbr::Step> steps;
    steps.push_back({0, *ladder.find(height, 60)});
    steps.push_back({segments / 3, *ladder.find(height, 48)});
    steps.push_back({2 * segments / 3, *ladder.find(height, 24)});
    video::ScheduledAbr abr(steps);
    spec.abr = &abr;

    core::VideoExperiment experiment(spec);
    const auto result = experiment.run();
    const auto& series = result.metrics.presented_per_second;

    // Mean rendered FPS and encoded rate per phase.
    const std::size_t phase = series.size() / 3;
    const int encoded[] = {60, 48, 24};
    for (int p = 0; p < 3; ++p) {
      double total = 0.0;
      std::size_t count = 0;
      for (std::size_t s = phase * p; s < std::min(series.size(), phase * (p + 1)); ++s) {
        total += series[s];
        ++count;
      }
      const double rendered = count > 0 ? total / count : 0.0;
      std::printf("  encoded %2d FPS -> rendered %5.1f FPS |%s\n", encoded[p], rendered,
                  stats::ascii_bar(rendered / 60.0, 30).c_str());
    }
  }

  std::printf("\nShape check (paper): at 1080p the rendered FPS is ~0 at 60 FPS encoding and\n"
              "recovers to ~the encoded rate at 24 FPS — resolution can be preserved by\n"
              "adapting the frame rate.\n");
  return 0;
}
