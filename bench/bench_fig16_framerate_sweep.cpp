// Figure 16: impact of varying the encoded frame rate (24/48/60) at
// three resolutions on the Nokia 1. Paper: at 1080p, rendered FPS is
// zero when encoded at 60 FPS but losses drop to about zero at 24 FPS —
// high resolution can be preserved by lowering the frame rate.
//
// The three per-resolution sessions are independent (own Engine/Testbed
// each), so they fan out across the batch runner; --jobs 1 reproduces
// the identical numbers serially.
#include <array>
#include <chrono>

#include "bench_util.hpp"
#include "runner/warm_sweep.hpp"

namespace {

struct HeightResult {
  int height = 0;
  std::array<double, 3> rendered_fps{};  // phases encoded at 60/48/24
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 16 - encoded frame rate vs rendered FPS per resolution (Nokia 1)",
                "Waheed et al., CoNEXT'22, Fig. 16 / Sec. 6");
  const int duration = bench::video_duration_s(48);
  const int jobs = bench::jobs_from_args(argc, argv);
  const std::vector<int> heights = {480, 720, 1080};
  constexpr int kEncoded[] = {60, 48, 24};

  const auto batch = runner::run_batch(heights.size(), jobs, [&](std::size_t i) {
    // Declarative scenario (DESIGN.md §11): one Nokia 1 world with one
    // video session; the legacy VideoRunSpec tuple maps onto it 1:1.
    scenario::ScenarioSpec spec;
    spec.family.clear();
    spec.device_override = core::nokia1();
    spec.seed = 5;
    scenario::VideoWorkloadSpec session;
    session.height = heights[i];
    session.fps = 60;
    session.duration_s = duration;
    session.seed = 5;

    // Scripted frame-rate schedule: thirds of the session.
    const video::BitrateLadder ladder = video::BitrateLadder::youtube();
    const int segments = duration / 4;
    std::vector<video::ScheduledAbr::Step> steps;
    steps.push_back({0, *ladder.find(session.height, 60)});
    steps.push_back({segments / 3, *ladder.find(session.height, 48)});
    steps.push_back({2 * segments / 3, *ladder.find(session.height, 24)});
    video::ScheduledAbr abr(steps);
    session.abr = &abr;
    spec.workloads.emplace_back(std::move(session));

    const auto scen = scenario::run_scenario(spec);
    const auto& result = scen.sessions.at(0).result;
    const auto& series = result.metrics.presented_per_second;

    HeightResult out;
    out.height = heights[i];
    const std::size_t phase = series.size() / 3;
    for (int p = 0; p < 3; ++p) {
      double total = 0.0;
      std::size_t count = 0;
      for (std::size_t s = phase * static_cast<std::size_t>(p);
           s < std::min(series.size(), phase * static_cast<std::size_t>(p + 1)); ++s) {
        total += series[s];
        ++count;
      }
      out.rendered_fps[static_cast<std::size_t>(p)] = count > 0 ? total / count : 0.0;
    }
    return out;
  });

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "fig16_framerate_sweep")
      .field("jobs", batch.jobs_used)
      .field("duration_s", duration);
  json.key("resolutions").begin_array();
  for (const auto& slot : batch.runs) {
    if (!slot.ok) {
      bench::section("run failed: " + slot.error);
      continue;
    }
    const HeightResult& r = slot.value;
    bench::section(std::to_string(r.height) + "p - one session switching 60 -> 48 -> 24 FPS");
    json.begin_object().field("height", r.height).key("phases").begin_array();
    for (int p = 0; p < 3; ++p) {
      const double rendered = r.rendered_fps[static_cast<std::size_t>(p)];
      std::printf("  encoded %2d FPS -> rendered %5.1f FPS |%s\n", kEncoded[p], rendered,
                  stats::ascii_bar(rendered / 60.0, 30).c_str());
      json.begin_object()
          .field("encoded_fps", kEncoded[p])
          .field("rendered_fps", rendered)
          .end_object();
    }
    json.end_array().end_object();
  }
  json.end_array().end_object();
  const std::string path = runner::bench_json_path("fig16_framerate_sweep");
  if (runner::write_file(path, json.str())) {
    std::printf("\nmachine-readable: %s\n", path.c_str());
  }

  std::printf("\nShape check (paper): at 1080p the rendered FPS is ~0 at 60 FPS encoding and\n"
              "recovers to ~the encoded rate at 24 FPS — resolution can be preserved by\n"
              "adapting the frame rate.\n");

  // Warm-start sweep: the fig16 grid (heights x encoded frame rates)
  // shares one boot+pressure world per (state, run) group. The cold pass
  // re-simulates that world for every cell; the warm pass prepares it
  // once and forks the video phase per cell. Outputs must be
  // byte-identical — the wall-clock delta is pure startup-phase savings.
  bench::section("warm-start sweep: cold vs forked-warm (same seeds, same bytes)");
  {
    using clock = std::chrono::steady_clock;
    scenario::ScenarioSpec proto;
    proto.family.clear();
    proto.device_override = core::nokia1();
    scenario::VideoWorkloadSpec session;
    session.duration_s = bench::video_duration_s(16);
    proto.workloads.emplace_back(std::move(session));
    // Organic background churn is the expensive shared phase (launching
    // and settling 20 apps dwarfs synthetic induction) — the setup where
    // re-simulating the world per cell actually hurts.
    proto.organic_background_apps = 20;
    const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal};
    const std::vector<int> sweep_heights = {240, 360, 480, 720, 1080};
    const std::vector<int> sweep_fps = {24, 48, 60};
    const int runs = bench::runs_per_cell(1);
    const std::uint64_t base_seed = 5;
    const int jobs_used = runner::resolve_jobs(jobs);

    const auto cold_t0 = clock::now();
    const auto cold = runner::run_sweep_grid_shared(proto, states, sweep_fps, sweep_heights, runs,
                                                    jobs, base_seed, runner::SweepMode::Cold);
    const double cold_s = std::chrono::duration<double>(clock::now() - cold_t0).count();

    const auto warm_t0 = clock::now();
    const auto warm = runner::run_sweep_grid_shared(proto, states, sweep_fps, sweep_heights, runs,
                                                    jobs, base_seed, runner::SweepMode::Warm);
    const double warm_s = std::chrono::duration<double>(clock::now() - warm_t0).count();

    const std::string cold_json =
        runner::sweep_json("fig16_warm_start", cold, runs, jobs_used, base_seed);
    const std::string warm_json =
        runner::sweep_json("fig16_warm_start", warm, runs, jobs_used, base_seed);
    const bool identical = cold_json == warm_json;
    std::printf("  grid: %zu cells x %d run(s), cold %.2fs, warm %.2fs (%.1f%% wall-clock"
                " saved)\n",
                cold.size(), runs, cold_s, warm_s,
                cold_s > 0.0 ? (1.0 - warm_s / cold_s) * 100.0 : 0.0);
    std::printf("  outputs byte-identical: %s%s\n", identical ? "yes" : "NO - BUG",
                runner::warm_fork_supported() ? "" : " (fork unsupported; warm ran cold)");
    const std::string sweep_path = runner::bench_json_path("fig16_warm_start");
    if (runner::write_file(sweep_path, warm_json)) {
      std::printf("  machine-readable: %s\n", sweep_path.c_str());
    }
    if (!identical) return 1;
  }
  return 0;
}
