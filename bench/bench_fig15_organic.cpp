// Figure 15 + §4.3 "performance under organic memory pressure":
// rendered FPS and processes killed during a Nokia 1 video run where
// pressure comes from 8 real background apps instead of the synthetic
// allocator. Paper: 480p60 drops 11.7% under Normal vs 30.6% under
// organic Moderate; many more kills during the Moderate run.
#include "bench_util.hpp"
#include "trace/analysis.hpp"

namespace {

struct OrganicRun {
  double drop_rate = 0.0;
  bool crashed = false;
  std::vector<int> fps_series;
  std::vector<std::size_t> kills_cumulative;
  std::size_t playback_start_s = 0;
};

OrganicRun run(int background_apps, std::uint64_t seed, int duration) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 480;
  spec.fps = 60;
  spec.organic_background_apps = background_apps;
  spec.pressure = mem::PressureLevel::Normal;  // ignored when organic
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = seed;
  core::VideoExperiment experiment(spec);
  const auto result = experiment.run();
  OrganicRun out;
  out.drop_rate = result.outcome.drop_rate;
  out.crashed = result.outcome.crashed;
  out.fps_series = result.metrics.presented_per_second;
  out.kills_cumulative = trace::cumulative_instants(experiment.testbed().tracer,
                                                    trace::InstantKind::ProcessKilled);
  out.playback_start_s =
      static_cast<std::size_t>(result.metrics.playback_start / sim::sec(1));
  return out;
}

void print_timeline(const char* label, const OrganicRun& organic) {
  mvqoe::bench::section(label);
  for (std::size_t second = 0; second < organic.fps_series.size(); second += 2) {
    const std::size_t wall = organic.playback_start_s + second;
    const std::size_t kills =
        wall < organic.kills_cumulative.size() ? organic.kills_cumulative[wall] : 0;
    std::printf("  t=%3zus fps=%3d |%-20s killed(cum)=%2zu\n", second,
                organic.fps_series[second],
                mvqoe::stats::ascii_bar(organic.fps_series[second] / 60.0, 20).c_str(), kills);
  }
  std::printf("  drop rate %.1f%%  crashed=%s  total kills=%zu\n", 100.0 * organic.drop_rate,
              organic.crashed ? "yes" : "no",
              organic.kills_cumulative.empty() ? 0 : organic.kills_cumulative.back());
}

}  // namespace

int main() {
  using namespace mvqoe;
  bench::header("Figure 15 + organic-pressure comparison (Nokia 1, 480p60, 8 background apps)",
                "Waheed et al., CoNEXT'22, Fig. 15 / Sec. 4.3");
  const int duration = bench::video_duration_s();
  const int runs = bench::runs_per_cell(3);

  stats::Accumulator normal_drops;
  stats::Accumulator organic_drops;
  OrganicRun normal_example;
  OrganicRun moderate_example;
  for (int i = 0; i < runs; ++i) {
    const auto normal = run(0, 10 + i, duration);
    const auto organic = run(8, 20 + i, duration);
    normal_drops.add(100.0 * normal.drop_rate);
    organic_drops.add(100.0 * organic.drop_rate);
    if (i == 0) {
      normal_example = normal;
      moderate_example = organic;
    }
    std::fflush(stdout);
  }

  print_timeline("Normal (no background apps): rendered FPS + cumulative kills",
                 normal_example);
  print_timeline("organic Moderate (8 background apps)", moderate_example);

  bench::section("paper-vs-measured (480p60)");
  bench::compare("drops under Normal", 11.7, normal_drops.mean(), "%");
  bench::compare("drops under organic Moderate", 30.6, organic_drops.mean(), "%");
  std::printf("\nShape check (paper): many more processes are killed during the Moderate run\n"
              "(%zu vs %zu in the example runs above).\n",
              moderate_example.kills_cumulative.empty() ? 0
                                                        : moderate_example.kills_cumulative.back(),
              normal_example.kills_cumulative.empty() ? 0
                                                      : normal_example.kills_cumulative.back());
  return 0;
}
