// Engine hot-path microbenchmark -> BENCH_engine.json.
//
// Measures the event-queue hot paths against a faithful replica of the
// pre-arena engine (see legacy_engine.hpp), so the baseline and the
// speedup are recorded in the same run on the same machine:
//
//   * schedule_dispatch — self-rescheduling event chains, the shape of
//     every periodic sampler / timeslice chain (events/sec).
//   * cancel_storm — park far-future timers and cancel them all, the
//     shape the compaction bound exists for (ops/sec).
//   * timeslice_rearm — cancel-one/schedule-two per dispatch, the exact
//     shape of Scheduler::arm_core_event (ops/sec).
//   * fig16_world — a real single-video scenario world; slices/sec and
//     engine events/sec (arena engine only; no legacy world exists).
//
// `--smoke` runs reduced iterations (the bench-smoke ctest tier, ~15 s)
// and exits non-zero when the arena-vs-legacy dispatch speedup falls
// below a conservative floor, so an engine throughput regression fails
// the suite instead of silently landing.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "legacy_engine.hpp"
#include "mem/types.hpp"
#include "runner/json_writer.hpp"
#include "scenario/driver.hpp"
#include "scenario/spec.hpp"
#include "sim/engine.hpp"

namespace mvqoe {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-N throughput: reruns a workload and keeps the fastest rate.
template <typename F>
double best_of(int reps, F workload) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) best = std::max(best, workload());
  return best;
}

// ---------------------------------------------------------------------------
// Workload 1: schedule -> dispatch chains (events/sec)
// ---------------------------------------------------------------------------

/// Capture state sized like the real scheduler lambdas ([this, core_idx,
/// is_slice] ~ 24 bytes): past std::function's SSO window, so the legacy
/// path pays the per-event allocation real call sites paid.
struct ChainCtx {
  void* engine = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t chain = 0;
};

template <typename EngineT>
double run_dispatch_closures(std::uint64_t total_events, int chains) {
  EngineT engine;
  std::uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  std::function<void(std::uint64_t)> tick = [&](std::uint64_t chain) {
    ++fired;
    if (fired + static_cast<std::uint64_t>(chains) <= total_events) {
      ChainCtx ctx{&engine, total_events - fired, chain};
      engine.schedule(1, [&tick, ctx] { tick(ctx.chain); });
    }
  };
  for (int c = 0; c < chains; ++c) {
    ChainCtx ctx{&engine, total_events, static_cast<std::uint64_t>(c)};
    engine.schedule(1, [&tick, ctx] { tick(ctx.chain); });
  }
  engine.run();
  return static_cast<double>(engine.dispatched()) / seconds_since(start);
}

struct FlatChain {
  sim::Engine* engine = nullptr;
  std::uint64_t fired = 0;
  std::uint64_t budget = 0;
  std::uint64_t chains = 0;
  static void tick(void* ctx, std::uint64_t chain) {
    auto* self = static_cast<FlatChain*>(ctx);
    ++self->fired;
    if (self->fired + self->chains <= self->budget) {
      self->engine->schedule_flat(1, &FlatChain::tick, self, chain);
    }
  }
};

double run_dispatch_flat(std::uint64_t total_events, int chains) {
  sim::Engine engine;
  FlatChain state{&engine, 0, total_events, static_cast<std::uint64_t>(chains)};
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < chains; ++c) {
    engine.schedule_flat(1, &FlatChain::tick, &state, static_cast<std::uint64_t>(c));
  }
  engine.run();
  return static_cast<double>(engine.dispatched()) / seconds_since(start);
}

// ---------------------------------------------------------------------------
// Workload 2: schedule/cancel storm (ops/sec; an op = schedule or cancel)
// ---------------------------------------------------------------------------

template <typename EngineT>
double run_cancel_storm(std::uint64_t rounds) {
  EngineT engine;
  std::vector<typename std::decay_t<decltype(engine.schedule_at(0, nullptr))>> batch;
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    batch.clear();
    for (int i = 0; i < 40; ++i) {
      batch.push_back(engine.schedule_at(sim::hours(1), [] {}));
    }
    for (const auto id : batch) engine.cancel(id);
    ops += 80;
  }
  return static_cast<double>(ops) / seconds_since(start);
}

// ---------------------------------------------------------------------------
// Workload 3: timeslice re-arm (Scheduler::arm_core_event shape)
// ---------------------------------------------------------------------------

template <typename EngineT>
double run_rearm_closures(std::uint64_t total_events) {
  EngineT engine;
  std::uint64_t fired = 0;
  auto parked = engine.schedule_at(sim::hours(1), [] {});
  std::function<void()> tick = [&] {
    ++fired;
    engine.cancel(parked);
    parked = engine.schedule_at(engine.now() + sim::hours(1), [] {});
    if (fired < total_events) {
      ChainCtx ctx{&engine, total_events - fired, 0};
      engine.schedule(1, [&tick, ctx] { tick(); });
    }
  };
  const auto start = std::chrono::steady_clock::now();
  engine.schedule(1, [&tick] { tick(); });
  engine.run();
  (void)parked;
  return 3.0 * static_cast<double>(fired) / seconds_since(start);
}

struct FlatRearm {
  sim::Engine* engine = nullptr;
  sim::EventId parked = sim::kInvalidEvent;
  std::uint64_t fired = 0;
  std::uint64_t budget = 0;
  static void noop(void*, std::uint64_t) {}
  static void tick(void* ctx, std::uint64_t) {
    auto* self = static_cast<FlatRearm*>(ctx);
    ++self->fired;
    self->engine->cancel(self->parked);
    self->parked = self->engine->schedule_flat(sim::hours(1), &FlatRearm::noop, self);
    if (self->fired < self->budget) {
      self->engine->schedule_flat(1, &FlatRearm::tick, self);
    }
  }
};

double run_rearm_flat(std::uint64_t total_events) {
  sim::Engine engine;
  FlatRearm state{&engine, sim::kInvalidEvent, 0, total_events};
  state.parked = engine.schedule_flat(sim::hours(1), &FlatRearm::noop, &state);
  const auto start = std::chrono::steady_clock::now();
  engine.schedule_flat(1, &FlatRearm::tick, &state);
  engine.run();
  return 3.0 * static_cast<double>(state.fired) / seconds_since(start);
}

// ---------------------------------------------------------------------------
// Workload 4: fig16-class world (slices/sec, events/sec)
// ---------------------------------------------------------------------------

struct WorldResult {
  double slices_per_sec = 0.0;
  double events_per_sec = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  std::uint64_t digest = 0;
};

WorldResult run_fig16_world(int duration_s) {
  scenario::ScenarioDriver driver(scenario::single_video(
      "fig16", 480, 30, duration_s, mem::PressureLevel::Critical, 42));
  driver.prepare();
  driver.start();
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t before = driver.testbed().engine.dispatched();
  std::uint64_t slices = 0;
  while (driver.advance_slice()) ++slices;
  const double wall = seconds_since(start);
  WorldResult out;
  out.events = driver.testbed().engine.dispatched() - before;
  out.scheduled = driver.testbed().engine.scheduled();
  out.cancels = driver.testbed().engine.cancels();
  out.slices_per_sec = static_cast<double>(slices) / wall;
  out.events_per_sec = static_cast<double>(out.events) / wall;
  out.sim_seconds = static_cast<double>(slices);
  out.digest = driver.state_digest();
  driver.finalize();
  return out;
}

}  // namespace
}  // namespace mvqoe

int main(int argc, char** argv) {
  using namespace mvqoe;

  bool smoke = false;
  int chains = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--chains") == 0 && i + 1 < argc) chains = std::atoi(argv[++i]);
  }
  // Iteration budget: sized so the smoke tier fits a ~15 s suite slot.
  // Every workload is run `reps` times and the best rate kept — the
  // standard way to strip scheduler noise from a throughput measurement.
  const int reps = 3;
  const std::uint64_t dispatch_events = smoke ? 1'500'000 : 6'000'000;
  const std::uint64_t storm_rounds = smoke ? 40'000 : 160'000;
  const std::uint64_t rearm_events = smoke ? 500'000 : 2'000'000;
  const int world_duration_s = smoke ? 16 : 60;

  std::printf("engine hot-path bench (%s)\n", smoke ? "smoke" : "full");

  // Headline: the single-world hot path. One dispatched event per
  // iteration plus the cancel-one/schedule-two timer re-arm that the
  // scheduler performs around it (Scheduler::arm_core_event) — the
  // busiest engine pattern a single simulated device produces.
  const double legacy_hot = best_of(reps, [&] {
    return run_rearm_closures<bench::LegacyEngine>(rearm_events);
  });
  const double arena_hot = best_of(reps, [&] { return run_rearm_flat(rearm_events); });
  const double hot_speedup = arena_hot / legacy_hot;
  std::printf("single_world_hot_path  legacy %12.0f ev/s  arena %12.0f ev/s  speedup %.2fx\n",
              legacy_hot, arena_hot, hot_speedup);

  const double legacy_chain = best_of(reps, [&] {
    return run_dispatch_closures<bench::LegacyEngine>(dispatch_events, 1);
  });
  const double arena_chain_closure = best_of(reps, [&] {
    return run_dispatch_closures<sim::Engine>(dispatch_events, 1);
  });
  const double arena_chain_flat = best_of(reps, [&] { return run_dispatch_flat(dispatch_events, 1); });
  const double chain_speedup = arena_chain_flat / legacy_chain;
  std::printf("schedule_dispatch      legacy %12.0f ev/s  arena %12.0f ev/s  "
              "(closure %12.0f ev/s)  speedup %.2fx\n",
              legacy_chain, arena_chain_flat, arena_chain_closure, chain_speedup);

  const double legacy_inter = best_of(reps, [&] {
    return run_dispatch_closures<bench::LegacyEngine>(dispatch_events, chains);
  });
  const double arena_inter = best_of(reps, [&] { return run_dispatch_flat(dispatch_events, chains); });
  const double inter_speedup = arena_inter / legacy_inter;
  std::printf("dispatch_interleaved   legacy %12.0f ev/s  arena %12.0f ev/s  "
              "(%d chains)  speedup %.2fx\n",
              legacy_inter, arena_inter, chains, inter_speedup);

  const double legacy_storm = best_of(reps, [&] {
    return run_cancel_storm<bench::LegacyEngine>(storm_rounds);
  });
  const double arena_storm = best_of(reps, [&] { return run_cancel_storm<sim::Engine>(storm_rounds); });
  const double storm_speedup = arena_storm / legacy_storm;
  std::printf("cancel_storm           legacy %12.0f op/s  arena %12.0f op/s  speedup %.2fx\n",
              legacy_storm, arena_storm, storm_speedup);

  const WorldResult world = run_fig16_world(world_duration_s);
  std::printf("fig16_world            %.1f slices/s  %.0f ev/s  (%.0f sim-s, digest %016llx)\n",
              world.slices_per_sec, world.events_per_sec, world.sim_seconds,
              static_cast<unsigned long long>(world.digest));
  std::printf("fig16_world mix        scheduled %llu  dispatched %llu  cancels %llu\n",
              static_cast<unsigned long long>(world.scheduled),
              static_cast<unsigned long long>(world.events),
              static_cast<unsigned long long>(world.cancels));

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "engine")
      .field("smoke", smoke)
      .field("reps", reps)
      .field("target_speedup", 5.0);
  json.key("single_world_hot_path").begin_object()
      .field("workload", "per event: dispatch + timer cancel + re-arm (Scheduler::arm_core_event shape)")
      .field("events", rearm_events)
      .field("legacy_events_per_sec", legacy_hot)
      .field("arena_events_per_sec", arena_hot)
      .field("speedup", hot_speedup)
      .end_object();
  json.key("schedule_dispatch").begin_object()
      .field("events", dispatch_events)
      .field("legacy_events_per_sec", legacy_chain)
      .field("arena_closure_events_per_sec", arena_chain_closure)
      .field("arena_flat_events_per_sec", arena_chain_flat)
      .field("speedup", chain_speedup)
      .end_object();
  json.key("dispatch_interleaved").begin_object()
      .field("chains", chains)
      .field("events", dispatch_events)
      .field("legacy_events_per_sec", legacy_inter)
      .field("arena_flat_events_per_sec", arena_inter)
      .field("speedup", inter_speedup)
      .end_object();
  json.key("cancel_storm").begin_object()
      .field("rounds", storm_rounds)
      .field("legacy_ops_per_sec", legacy_storm)
      .field("arena_ops_per_sec", arena_storm)
      .field("speedup", storm_speedup)
      .end_object();
  json.key("fig16_world").begin_object()
      .field("sim_seconds", world.sim_seconds)
      .field("slices_per_sec", world.slices_per_sec)
      .field("events_per_sec", world.events_per_sec)
      .field("engine_events", world.events)
      .field("engine_scheduled", world.scheduled)
      .field("engine_cancels", world.cancels)
      .end_object();
  json.end_object();

  const std::string path = runner::bench_json_path("engine");
  if (runner::write_file(path, json.str())) {
    std::printf("machine-readable: %s\n", path.c_str());
  }

  if (smoke) {
    // Regression tripwire for the ctest tier: generous slack under the
    // measured speedups (hot path ~5.5x, chain ~3.5x, storm ~3x on the
    // reference box; see BENCH_engine.json history), but far above where
    // a reintroduced per-event allocation or hash lookup would land.
    const bool regressed = hot_speedup < 3.5 || chain_speedup < 2.0 || storm_speedup < 2.0;
    if (regressed) {
      std::fprintf(stderr,
                   "FAIL: engine hot-path speedup regressed "
                   "(hot %.2fx < 3.5x, chain %.2fx < 2.0x, or storm %.2fx < 2.0x)\n",
                   hot_speedup, chain_speedup, storm_speedup);
      return 1;
    }
  }
  return 0;
}
