// Figure 12: rendering performance across the five genre videos (travel,
// sports, gaming, news, nature) on the Nexus 5, across resolutions,
// frame rates and pressure states. Paper: the trend holds for every
// genre — 30 FPS drops low/negligible, 60 FPS drops significant and
// growing with pressure and resolution.
#include "bench_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 12 - frame drops across video genres (Nexus 5)",
                "Waheed et al., CoNEXT'22, Fig. 12");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s(40);

  const auto suite = video::genre_suite(duration);
  const int heights[] = {480, 720, 1080};
  const mem::PressureLevel states[] = {mem::PressureLevel::Normal, mem::PressureLevel::Moderate,
                                       mem::PressureLevel::Critical};

  for (const auto& asset : suite) {
    bench::section(std::string(video::to_string(asset.genre)) + " — \"" + asset.title + "\"");
    std::printf("  %-9s", "state");
    for (const int fps : {30, 60}) {
      for (const int height : heights) std::printf("  %4dp@%-2d", height, fps);
    }
    std::printf("\n");
    for (const auto state : states) {
      std::printf("  %-9s", bench::state_name(state));
      for (const int fps : {30, 60}) {
        for (const int height : heights) {
          core::VideoRunSpec spec;
          spec.device = core::nexus5();
          spec.height = height;
          spec.fps = fps;
          spec.pressure = state;
          spec.asset = asset;
          spec.seed = 77 + height + fps + static_cast<int>(state) * 3;
          const auto agg = core::run_video_repeated(spec, runs);
          std::printf("  %7.1f%%", 100.0 * agg.drop_rate().mean);
          std::fflush(stdout);
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nShape check (paper): for every genre, 30 FPS drops are low and 60 FPS drops\n"
              "grow with pressure and resolution.\n");
  return 0;
}
