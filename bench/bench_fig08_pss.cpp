// Figure 8: video-client PSS on the Nexus 5 across resolutions
// (240p-1440p) and encoded frame rates (30/60), no memory pressure.
// Paper: PSS grows ~125 MB from 240p to 1080p (~31 MB per step) and
// ~20 MB on average when moving from 30 to 60 FPS.
#include "bench_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 8 - video client PSS vs resolution and frame rate (Nexus 5)",
                "Waheed et al., CoNEXT'22, Fig. 8 / Sec. 4.2");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s(40);

  double mean_30[6] = {0};
  double mean_60[6] = {0};
  const int heights[] = {240, 360, 480, 720, 1080, 1440};
  std::printf("%-7s  %-28s  %-28s\n", "", "30 FPS PSS (mean [min..max])", "60 FPS PSS");
  for (int i = 0; i < 6; ++i) {
    double row[2] = {0, 0};
    std::string cells[2];
    for (int f = 0; f < 2; ++f) {
      core::VideoRunSpec spec;
      spec.device = core::nexus5();
      spec.height = heights[i];
      spec.fps = f == 0 ? 30 : 60;
      spec.asset = video::dubai_flow_motion(duration);
      const auto agg = core::run_video_repeated(spec, runs);
      row[f] = agg.peak_pss_mb().mean;
      char buffer[96];
      std::snprintf(buffer, sizeof buffer, "%7.1f MB [%6.1f..%6.1f]", agg.peak_pss_mb().mean,
                    agg.min_peak_pss_mb(), agg.max_peak_pss_mb());
      cells[f] = buffer;
    }
    mean_30[i] = row[0];
    mean_60[i] = row[1];
    std::printf("%-7s  %-28s  %-28s\n", (std::to_string(heights[i]) + "p").c_str(),
                cells[0].c_str(), cells[1].c_str());
  }

  bench::section("paper-vs-measured");
  bench::compare("PSS increase 240p -> 1080p at 30 FPS", 125.0, mean_30[4] - mean_30[0], "MB");
  bench::compare("mean per-step increase (240p..1080p)", 31.3, (mean_30[4] - mean_30[0]) / 4.0,
                 "MB");
  double hfr = 0.0;
  for (int i = 0; i < 5; ++i) hfr += mean_60[i] - mean_30[i];
  bench::compare("mean 30->60 FPS increase (240p..1080p)", 20.0, hfr / 5.0, "MB");
  return 0;
}
