// Figure 6: transitions between memory-pressure states and dwell times,
// over the most-pressured devices. Paper: after Critical, devices move
// to Low 67.2% of the time, to Normal only 13.6%; 75th-percentile dwell
// in Critical before moving to Low is 12.8 s (10.8 s before Normal).
#include "bench_util.hpp"
#include "study_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 6 - pressure-state transitions and dwell times",
                "Waheed et al., CoNEXT'22, Fig. 6");

  const auto data = bench::run_scaled_study();
  const auto& results = data.results;
  const auto stats = study::transition_stats(results, 0.30, 9);
  std::printf("devices aggregated: %zu (paper: the 9 devices > 30%% out of Normal)\n",
              stats.devices_used);

  const char* level_names[] = {"Normal", "Moderate", "Low", "Critical"};
  bench::section("next-state percentages (rows = from-state)");
  std::printf("  %-9s", "");
  for (int to = 0; to < study::kLevels; ++to) std::printf("  -> %-8s", level_names[to]);
  std::printf("\n");
  for (int from = 0; from < study::kLevels; ++from) {
    std::printf("  %-9s", level_names[from]);
    for (int to = 0; to < study::kLevels; ++to) {
      std::printf("  %8.1f%%  ", stats.percent[static_cast<std::size_t>(from)]
                                               [static_cast<std::size_t>(to)]);
    }
    std::printf("\n");
  }

  bench::section("dwell times before leaving each state (seconds)");
  for (int from = 0; from < study::kLevels; ++from) {
    const auto& box = stats.dwell[static_cast<std::size_t>(from)];
    if (box.n == 0) continue;
    std::printf("  %-9s med=%6.1fs q75=%6.1fs max=%7.1fs  n=%zu\n", level_names[from],
                box.median, box.q75, box.max, box.n);
  }

  bench::section("paper-vs-measured (Critical row)");
  bench::compare("Critical -> Low share", 67.2, stats.percent[3][2], "%");
  bench::compare("Critical -> Normal share", 13.6, stats.percent[3][0], "%");
  bench::compare("Critical dwell 75th percentile", 12.8, stats.dwell[3].q75, "s");
  std::printf("\nImplication check (paper): high-pressure states persist -> kernel cannot\n"
              "quickly alleviate pressure. Critical leaves to a *high* state %.1f%% of the\n"
              "time (paper: dominant share).\n",
              stats.percent[3][1] + stats.percent[3][2]);
  return 0;
}
