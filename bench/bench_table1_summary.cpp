// Table 1: the paper's key-insight summary. This bench regenerates each
// row's quantitative claim from the corresponding subsystem: the field
// study (§3 rows), the Nokia 1 / Nexus 5 experiments (§4 rows), the MOS
// survey, and the §5 trace analysis.
#include "bench_util.hpp"
#include "qoe/mos.hpp"
#include "study_util.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Table 1 - key insights summary", "Waheed et al., CoNEXT'22, Table 1");
  const int duration = bench::video_duration_s();
  const int runs = bench::runs_per_cell(3);

  bench::section("rows 1-2: user study (memory pressure in the wild)");
  {
    const auto data = bench::run_scaled_study();
    const auto summary = study::summarize(data.results);
    bench::compare("devices experiencing memory pressure (>=1 signal/h)", 63.0,
                   summary.percent_with_any_signal_per_hour, "%");
    bench::compare("devices with > 10 Critical signals/hour", 19.0,
                   summary.percent_with_10_critical_per_hour, "%");
    bench::compare("devices > 50% of time in high pressure", 10.0,
                   summary.percent_time50_high_pressure, "%");
    bench::compare("devices >= 2% of time in high pressure", 35.0,
                   summary.percent_time2_high_pressure, "%");
  }

  bench::section("row 3: entry-level (Nokia 1) high-res drops and crashes under pressure");
  {
    stats::Accumulator drops;
    double crash = 0.0;
    int cells = 0;
    for (const int height : {720, 1080}) {
      for (const int fps : {30, 60}) {
        core::VideoRunSpec spec;
        spec.device = core::nokia1();
        spec.height = height;
        spec.fps = fps;
        spec.pressure = mem::PressureLevel::Moderate;
        spec.asset = video::dubai_flow_motion(duration);
        const auto agg = core::run_video_repeated(spec, runs);
        drops.add(100.0 * agg.drop_rate().mean);
        crash += agg.crash_rate_percent();
        ++cells;
        std::fflush(stdout);
      }
    }
    bench::compare("Nokia 1 mean drops, 720/1080p under pressure", 75.0, drops.mean(), "%");
    std::printf("  Nokia 1 'frequent crashes': mean crash rate %.0f%% across high-res cells\n",
                crash / cells);
  }

  bench::section("row 4: Nexus 5 drops up to ~25%");
  {
    double worst = 0.0;
    for (const auto state : {mem::PressureLevel::Moderate, mem::PressureLevel::Critical}) {
      core::VideoRunSpec spec;
      spec.device = core::nexus5();
      spec.height = 1080;
      spec.fps = 60;
      spec.pressure = state;
      spec.asset = video::dubai_flow_motion(duration);
      const auto agg = core::run_video_repeated(spec, runs);
      worst = std::max(worst, 100.0 * agg.drop_rate_completed().mean);
      std::fflush(stdout);
    }
    bench::compare("Nexus 5 worst-case drops (completed runs)", 25.0, worst, "%");
  }

  bench::section("row 5: user survey — experience degrades significantly under pressure");
  {
    const auto survey = qoe::run_dmos_survey(qoe::MosModel{}, 0.03, 0.35, 99, 42);
    bench::compare("raters scoring 1-2 of 99", 60.0,
                   static_cast<double>(survey.count(1) + survey.count(2)), "#");
  }

  bench::section("row 6: waiting time of video threads increases under pressure");
  {
    auto run_states = [&](mem::PressureLevel state) {
      core::VideoRunSpec spec;
      spec.device = core::nokia1();
      spec.height = 480;
      spec.fps = 60;
      spec.pressure = state;
      spec.asset = video::dubai_flow_motion(duration);
      spec.seed = 3;
      core::VideoExperiment experiment(spec);
      experiment.run();
      std::vector<trace::ThreadId> tids = experiment.session().client_thread_ids();
      tids.push_back(experiment.session().surfaceflinger_tid());
      return trace::state_times(experiment.testbed().tracer, tids,
                                experiment.playback_start());
    };
    const auto normal = run_states(mem::PressureLevel::Normal);
    const auto moderate = run_states(mem::PressureLevel::Moderate);
    const double increase =
        normal.runnable_preempted > 0
            ? 100.0 * (moderate.runnable_preempted - normal.runnable_preempted) /
                  normal.runnable_preempted
            : 0.0;
    bench::compare("Runnable (Preempted) increase Normal->Moderate", 97.8, increase, "%");
  }

  bench::section("row 7: adaptation opportunity (frame rate under pressure)");
  {
    auto run_fps = [&](int fps) {
      core::VideoRunSpec spec;
      spec.device = core::nokia1();
      spec.height = 480;
      spec.fps = fps;
      spec.organic_background_apps = 8;
      spec.asset = video::dubai_flow_motion(duration);
      return core::run_video_repeated(spec, runs).drop_rate().mean * 100.0;
    };
    const double at60 = run_fps(60);
    const double at24 = run_fps(24);
    std::printf("  480p under organic pressure: %.1f%% drops at 60 FPS vs %.1f%% at 24 FPS\n",
                at60, at24);
    std::printf("  frame-rate adaptation recovers playback: %s\n",
                at24 < at60 * 0.5 ? "YES" : "NO");
  }
  return 0;
}
