// Table 1: the paper's key-insight summary. This bench regenerates each
// row's quantitative claim from the corresponding subsystem: the field
// study (§3 rows), the Nokia 1 / Nexus 5 experiments (§4 rows), the MOS
// survey, and the §5 trace analysis. The repeated-run video cells fan
// out over the batch runner (--jobs / MVQOE_JOBS); every paper-vs-
// measured row also lands in BENCH_table1_summary.json.
#include "bench_util.hpp"
#include "qoe/mos.hpp"
#include "study_util.hpp"
#include "trace/analysis.hpp"

namespace {

struct Row {
  std::string what;
  double paper = 0.0;
  double measured = 0.0;
  std::string unit;
};

std::vector<Row> g_rows;

void row(const std::string& what, double paper, double measured, const std::string& unit) {
  mvqoe::bench::compare(what, paper, measured, unit);
  g_rows.push_back(Row{what, paper, measured, unit});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Table 1 - key insights summary", "Waheed et al., CoNEXT'22, Table 1");
  const int duration = bench::video_duration_s();
  const int runs = bench::runs_per_cell(3);
  const int jobs = bench::jobs_from_args(argc, argv);

  bench::section("rows 1-2: user study (memory pressure in the wild)");
  {
    const auto data = bench::run_scaled_study(80, 42, jobs);
    const auto summary = study::summarize(data.results);
    row("devices experiencing memory pressure (>=1 signal/h)", 63.0,
        summary.percent_with_any_signal_per_hour, "%");
    row("devices with > 10 Critical signals/hour", 19.0,
        summary.percent_with_10_critical_per_hour, "%");
    row("devices > 50% of time in high pressure", 10.0, summary.percent_time50_high_pressure,
        "%");
    row("devices >= 2% of time in high pressure", 35.0, summary.percent_time2_high_pressure,
        "%");
  }

  bench::section("row 3: entry-level (Nokia 1) high-res drops and crashes under pressure");
  {
    core::VideoRunSpec proto;
    proto.device = core::nokia1();
    proto.asset = video::dubai_flow_motion(duration);
    const auto cells = runner::run_sweep_grid(proto, {mem::PressureLevel::Moderate}, {30, 60},
                                              {720, 1080}, runs, jobs, 1);
    stats::Accumulator drops;
    double crash = 0.0;
    for (const auto& cell : cells) {
      drops.add(100.0 * cell.aggregate.drop_rate().mean);
      crash += cell.aggregate.crash_rate_percent();
    }
    row("Nokia 1 mean drops, 720/1080p under pressure", 75.0, drops.mean(), "%");
    std::printf("  Nokia 1 'frequent crashes': mean crash rate %.0f%% across high-res cells\n",
                crash / static_cast<double>(cells.size()));
  }

  bench::section("row 4: Nexus 5 drops up to ~25%");
  {
    core::VideoRunSpec proto;
    proto.device = core::nexus5();
    proto.asset = video::dubai_flow_motion(duration);
    const auto cells = runner::run_sweep_grid(
        proto, {mem::PressureLevel::Moderate, mem::PressureLevel::Critical}, {60}, {1080}, runs,
        jobs, 1);
    double worst = 0.0;
    for (const auto& cell : cells) {
      worst = std::max(worst, 100.0 * cell.aggregate.drop_rate_completed().mean);
    }
    row("Nexus 5 worst-case drops (completed runs)", 25.0, worst, "%");
  }

  bench::section("row 5: user survey — experience degrades significantly under pressure");
  {
    const auto survey = qoe::run_dmos_survey(qoe::MosModel{}, 0.03, 0.35, 99, 42);
    row("raters scoring 1-2 of 99", 60.0,
        static_cast<double>(survey.count(1) + survey.count(2)), "#");
  }

  bench::section("row 6: waiting time of video threads increases under pressure");
  {
    // Two single runs that each dissect the tracer afterwards: fan the
    // pair out as a two-task batch.
    const auto batch =
        runner::run_batch(std::size_t{2}, jobs, [&](std::size_t i) -> trace::StateTimeTable {
          const auto state =
              i == 0 ? mem::PressureLevel::Normal : mem::PressureLevel::Moderate;
          core::VideoRunSpec spec;
          spec.device = core::nokia1();
          spec.height = 480;
          spec.fps = 60;
          spec.pressure = state;
          spec.asset = video::dubai_flow_motion(duration);
          spec.seed = 3;
          core::VideoExperiment experiment(spec);
          experiment.run();
          std::vector<trace::ThreadId> tids = experiment.session().client_thread_ids();
          tids.push_back(experiment.session().surfaceflinger_tid());
          return trace::state_times(experiment.testbed().tracer, tids,
                                    experiment.playback_start());
        });
    const auto& normal = batch.runs[0].value;
    const auto& moderate = batch.runs[1].value;
    const double increase =
        normal.runnable_preempted > 0
            ? 100.0 * (moderate.runnable_preempted - normal.runnable_preempted) /
                  normal.runnable_preempted
            : 0.0;
    row("Runnable (Preempted) increase Normal->Moderate", 97.8, increase, "%");
  }

  bench::section("row 7: adaptation opportunity (frame rate under pressure)");
  {
    auto run_fps = [&](int fps) {
      core::VideoRunSpec spec;
      spec.device = core::nokia1();
      spec.height = 480;
      spec.fps = fps;
      spec.organic_background_apps = 8;
      spec.asset = video::dubai_flow_motion(duration);
      return runner::run_video_batch(spec, runs, jobs).aggregate.drop_rate().mean * 100.0;
    };
    const double at60 = run_fps(60);
    const double at24 = run_fps(24);
    std::printf("  480p under organic pressure: %.1f%% drops at 60 FPS vs %.1f%% at 24 FPS\n",
                at60, at24);
    std::printf("  frame-rate adaptation recovers playback: %s\n",
                at24 < at60 * 0.5 ? "YES" : "NO");
  }

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "table1_summary")
      .field("runs_per_cell", runs)
      .field("jobs", runner::resolve_jobs(jobs));
  json.key("rows").begin_array();
  for (const Row& r : g_rows) {
    json.begin_object()
        .field("what", r.what)
        .field("paper", r.paper)
        .field("measured", r.measured)
        .field("unit", r.unit)
        .end_object();
  }
  json.end_array().end_object();
  const std::string path = runner::bench_json_path("table1_summary");
  if (runner::write_file(path, json.str())) {
    std::printf("\nmachine-readable: %s\n", path.c_str());
  }
  return 0;
}
