// Ablation for the paper's §7 OS-developer suggestion: "kswapd frequently
// switches cores; if the allocation of cores is coordinated between
// daemons and video processes, reduced context switching overhead can
// potentially lead to improved performance."
//
// We run the same pressured session (Nokia 1, 720p60, Moderate) with and
// without pinning the memory/IO daemons (kswapd, mmcqd, lmkd) to one
// core, leaving the rest to the app, and compare drops, daemon
// migrations and context switches.
#include "bench_util.hpp"
#include "core/pressure_inducer.hpp"
#include "trace/analysis.hpp"

namespace {

struct AblationResult {
  double drop_rate = 0.0;
  bool crashed = false;
  std::uint64_t kswapd_migrations = 0;
  std::uint64_t kswapd_switches = 0;
  std::uint64_t client_preemptions = 0;
};

AblationResult run(bool pin_daemons, std::uint64_t seed, int duration) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 720;
  spec.fps = 60;
  spec.pressure = mem::PressureLevel::Moderate;
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = seed;

  core::VideoExperiment experiment(spec);
  if (pin_daemons) {
    auto& tb = experiment.testbed();
    constexpr sched::AffinityMask kDaemonCore = 0b0001;
    tb.scheduler.set_affinity(tb.memory.kswapd_tid(), kDaemonCore);
    tb.scheduler.set_affinity(tb.memory.lmkd_tid(), kDaemonCore);
    tb.scheduler.set_affinity(tb.storage.mmcqd_tid(), kDaemonCore);
  }
  const auto outcome = experiment.run();

  AblationResult result;
  result.drop_rate = outcome.outcome.drop_rate;
  result.crashed = outcome.outcome.crashed;
  const auto& scheduler = experiment.testbed().scheduler;
  const auto kswapd = experiment.testbed().memory.kswapd_tid();
  result.kswapd_migrations = scheduler.counters(kswapd).migrations;
  result.kswapd_switches = scheduler.counters(kswapd).context_switches;
  std::vector<trace::ThreadId> tids = experiment.session().client_thread_ids();
  for (const auto tid : tids) {
    if (scheduler.exists(tid)) {
      result.client_preemptions += scheduler.counters(tid).preemptions_suffered;
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace mvqoe;
  bench::header("Ablation - coordinated daemon core allocation (paper Sec. 7, 'OS developers')",
                "Waheed et al., CoNEXT'22, Sec. 7 discussion");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s(40);

  stats::Accumulator drops[2];
  stats::Accumulator migrations[2];
  stats::Accumulator switches[2];
  stats::Accumulator preemptions[2];
  for (int i = 0; i < runs; ++i) {
    for (int pinned = 0; pinned < 2; ++pinned) {
      const auto result = run(pinned == 1, 50 + i, duration);
      drops[pinned].add(100.0 * result.drop_rate);
      migrations[pinned].add(static_cast<double>(result.kswapd_migrations));
      switches[pinned].add(static_cast<double>(result.kswapd_switches));
      preemptions[pinned].add(static_cast<double>(result.client_preemptions));
      std::fflush(stdout);
    }
  }

  std::printf("\n%-34s  %12s  %12s\n", "", "uncoordinated", "daemons pinned");
  std::printf("%-34s  %11.1f%%  %11.1f%%\n", "mean frame drops", drops[0].mean(),
              drops[1].mean());
  std::printf("%-34s  %12.0f  %12.0f\n", "kswapd core migrations", migrations[0].mean(),
              migrations[1].mean());
  std::printf("%-34s  %12.0f  %12.0f\n", "kswapd context switches", switches[0].mean(),
              switches[1].mean());
  std::printf("%-34s  %12.0f  %12.0f\n", "client preemptions suffered", preemptions[0].mean(),
              preemptions[1].mean());

  bench::section("shape check");
  std::printf("  pinning eliminates kswapd migrations: %s (%.0f -> %.0f)\n",
              migrations[1].mean() < migrations[0].mean() * 0.2 ? "YES" : "NO",
              migrations[0].mean(), migrations[1].mean());
  std::printf("  QoE with naive pinning: %.1f%% vs %.1f%% drops uncoordinated.\n",
              drops[1].mean(), drops[0].mean());
  std::printf("\n  Finding: the paper hedges ('can *potentially* lead to improved\n"
              "  performance') — and this ablation shows why the hedge matters. Pinning\n"
              "  does remove all migration overhead, but serializing kswapd, lmkd and\n"
              "  mmcqd onto one core creates a reclaim bottleneck exactly when reclaim is\n"
              "  the critical path. Coordination needs to be smarter than static pinning\n"
              "  (e.g. reserving a core *pair*, or pinning only at high pressure).\n");
  return 0;
}
