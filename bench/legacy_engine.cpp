#include "legacy_engine.hpp"

#include <algorithm>
#include <utility>

namespace mvqoe::bench {

LegacyEngine::EventId LegacyEngine::schedule_at(sim::Time t, Callback fn) {
  if (t < now_) t = now_;
  const EventId id = next_seq_;
  heap_.push_back(Entry{t, next_seq_, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++next_seq_;
  callbacks_.emplace(id, std::move(fn));
  return id;
}

LegacyEngine::EventId LegacyEngine::schedule(sim::Time delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool LegacyEngine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  maybe_compact();
  return true;
}

void LegacyEngine::maybe_compact() {
  if (heap_.size() < 64 || cancelled_.size() * 2 <= heap_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return cancelled_.count(e.id) != 0; }),
              heap_.end());
  heap_.shrink_to_fit();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

bool LegacyEngine::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    const auto cancelled = cancelled_.find(top.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++dispatched_;
    if (top.time == last_dispatch_time_) {
      ++same_time_run_;
      if (livelock_limit_ != 0 && same_time_run_ == livelock_limit_ + 1) ++livelock_trips_;
    } else {
      last_dispatch_time_ = top.time;
      same_time_run_ = 1;
    }
    fn();
    return true;
  }
  return false;
}

void LegacyEngine::run() {
  while (step()) {
  }
}

}  // namespace mvqoe::bench
