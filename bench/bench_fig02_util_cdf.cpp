// Figure 2: CDF of median RAM utilization across the cleaned study
// devices. Paper: 80% of devices had median utilization >= 60%; 20%
// exceeded 75%.
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "study_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 2 - CDF of median RAM utilization",
                "Waheed et al., CoNEXT'22, Fig. 2 / Table 1 row 1");

  const auto data = bench::run_scaled_study();
  const auto& results = data.results;
  std::printf("devices after >10h interactive cleaning: %zu (paper: 48 of 80)\n",
              results.size());

  const auto cdf = study::utilization_cdf(results);
  bench::section("CDF (median utilization -> fraction of devices)");
  for (std::size_t i = 0; i < cdf.size(); i += std::max<std::size_t>(1, cdf.size() / 16)) {
    std::printf("  util %5.1f%%  F=%.2f |%s\n", 100.0 * cdf[i].value, cdf[i].fraction,
                stats::ascii_bar(cdf[i].fraction, 30).c_str());
  }

  const auto summary = study::summarize(results);
  bench::section("paper-vs-measured");
  bench::compare("devices with median utilization >= 60%", 80.0,
                 summary.percent_median_util_ge_60, "%");
  bench::compare("devices with median utilization > 75%", 20.0,
                 summary.percent_median_util_gt_75, "%");
  return 0;
}
