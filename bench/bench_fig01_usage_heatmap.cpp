// Figure 1: heatmaps of how frequently users engage in activities on
// their device (1-5 ratings for games / music / video + multitasking).
#include "bench_util.hpp"
#include "study/analysis.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 1 - user activity / multitasking ratings",
                "Waheed et al., CoNEXT'22, Fig. 1 (survey of the 80 study users)");

  const auto population = study::generate_population(80, 42);
  const auto heatmap = study::usage_heatmap(population);

  std::printf("%-22s", "activity \\ rating");
  for (int rating = 1; rating <= 5; ++rating) std::printf("  %5d", rating);
  std::printf("   mean\n");
  for (int activity = 0; activity < 5; ++activity) {
    std::printf("%-22s", study::UsageHeatmap::activity_name(activity));
    double total = 0.0;
    double weighted = 0.0;
    for (int rating = 0; rating < 5; ++rating) {
      const int count = heatmap.counts[static_cast<std::size_t>(activity)]
                                      [static_cast<std::size_t>(rating)];
      std::printf("  %5d", count);
      total += count;
      weighted += count * (rating + 1);
    }
    std::printf("  %5.2f\n", total > 0 ? weighted / total : 0.0);
  }

  bench::section("paper's qualitative claims");
  auto mean_rating = [&](int activity) {
    double total = 0.0;
    double weighted = 0.0;
    for (int rating = 0; rating < 5; ++rating) {
      const int count = heatmap.counts[static_cast<std::size_t>(activity)]
                                      [static_cast<std::size_t>(rating)];
      total += count;
      weighted += count * (rating + 1);
    }
    return total > 0 ? weighted / total : 0.0;
  };
  std::printf("  video streaming most frequent activity: %s (video %.2f > music %.2f > games %.2f)\n",
              mean_rating(2) > mean_rating(1) && mean_rating(1) > mean_rating(0) ? "YES" : "NO",
              mean_rating(2), mean_rating(1), mean_rating(0));
  std::printf("  multitasking common (>1 app rating >= 3): mean %.2f\n", mean_rating(3));
  return 0;
}
