// Figure 13: percentage of time kswapd spends in each process state
// under Normal vs Moderate pressure (Nokia 1, 720p60). Paper: sleeping
// falls from 75% to 31%, running rises from 6% to 56%, and kswapd
// becomes the most-running thread on the device under Moderate.
#include "bench_util.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 13 - kswapd process states, Normal vs Moderate (Nokia 1, 720p60)",
                "Waheed et al., CoNEXT'22, Fig. 13 / Sec. 5 'Top running threads'");
  const int duration = bench::video_duration_s();

  auto run_once = [&](mem::PressureLevel state) {
    core::VideoRunSpec spec;
    spec.device = core::nokia1();
    spec.height = 720;  // our model expresses the paper's 480p60-Moderate degradation
                      // one rung higher; same mechanisms, documented in EXPERIMENTS.md
    spec.fps = 60;
    spec.pressure = state;
    spec.asset = video::dubai_flow_motion(duration);
    spec.seed = 11;
    auto experiment = std::make_unique<core::VideoExperiment>(spec);
    experiment->run();
    return experiment;
  };

  const mem::PressureLevel states[] = {mem::PressureLevel::Normal, mem::PressureLevel::Moderate};
  double running_pct[2] = {0, 0};
  double sleeping_pct[2] = {0, 0};
  std::size_t kswapd_rank[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const auto experiment = run_once(states[i]);
    const auto& tracer = experiment->testbed().tracer;
    const auto kswapd_tid = experiment->testbed().memory.kswapd_tid();
    const auto fractions =
        trace::state_fractions(tracer, kswapd_tid, experiment->playback_start());

    bench::section(std::string(bench::state_name(states[i])) + " - kswapd state shares");
    for (const auto& [name, fraction] : fractions) {
      std::printf("  %-22s %5.1f%% |%s\n", name.c_str(), 100.0 * fraction,
                  stats::ascii_bar(fraction, 30).c_str());
    }
    const auto running = fractions.find("Running");
    const auto sleeping = fractions.find("Sleeping");
    running_pct[i] = running != fractions.end() ? 100.0 * running->second : 0.0;
    sleeping_pct[i] = sleeping != fractions.end() ? 100.0 * sleeping->second : 0.0;
    kswapd_rank[i] = trace::running_rank(tracer, "kswapd0", experiment->playback_start());

    const auto top = trace::top_running_threads(tracer, experiment->playback_start());
    std::printf("  top running threads:\n");
    for (std::size_t t = 0; t < std::min<std::size_t>(6, top.size()); ++t) {
      std::printf("    #%zu %-28s %6.2fs\n", top[t].rank, top[t].name.c_str(),
                  top[t].running_seconds);
    }
  }

  bench::section("paper-vs-measured");
  bench::compare("kswapd %time Sleeping @ Normal", 75.0, sleeping_pct[0], "%");
  bench::compare("kswapd %time Sleeping @ Moderate", 31.0, sleeping_pct[1], "%");
  bench::compare("kswapd %time Running @ Normal", 6.0, running_pct[0], "%");
  bench::compare("kswapd %time Running @ Moderate", 56.0, running_pct[1], "%");
  std::printf("  kswapd running-time rank: Normal #%zu (paper #14), Moderate #%zu (paper #1)\n",
              kswapd_rank[0], kswapd_rank[1]);
  return 0;
}
