// Figure 5: violin plots of available memory per pressure state for the
// five devices that spent the most time out of Normal. Paper
// observations: (i) wide spread per state, (ii) mean available memory is
// lowest at Critical < Low < Moderate, (iii) thresholds differ across
// devices and scale with RAM.
#include "bench_util.hpp"
#include "study_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 5 - available memory by pressure state (top-5 pressured devices)",
                "Waheed et al., CoNEXT'22, Fig. 5");

  const auto data = bench::run_scaled_study();
  const auto& results = data.results;
  const auto violins = study::availability_violins(results, 5);

  const char* level_names[] = {"Normal", "Moderate", "Low", "Critical"};
  for (const auto& violin : violins) {
    bench::section("device #" + std::to_string(violin.device_index) + " (" +
                   violin.manufacturer + ", " + std::to_string(violin.ram_mb / 1024) + " GB)");
    for (int level = 0; level < study::kLevels; ++level) {
      const auto& summary = violin.by_state[static_cast<std::size_t>(level)];
      if (summary.box.n == 0) {
        std::printf("  %-9s (no samples)\n", level_names[level]);
        continue;
      }
      std::printf("  %-9s mean=%7.1fMB  [min %6.1f | q25 %6.1f | med %6.1f | q75 %6.1f | max %6.1f]  n=%zu\n",
                  level_names[level], summary.mean, summary.box.min, summary.box.q25,
                  summary.box.median, summary.box.q75, summary.box.max, summary.box.n);
    }
    // Observation (ii): ordering of mean available memory across states.
    const double moderate = violin.by_state[1].mean;
    const double low = violin.by_state[2].mean;
    const double critical = violin.by_state[3].mean;
    if (violin.by_state[1].box.n > 0 && violin.by_state[2].box.n > 0 &&
        violin.by_state[3].box.n > 0) {
      std::printf("  ordering Critical <= Low <= Moderate: %s\n",
                  critical <= low + 8.0 && low <= moderate + 8.0 ? "holds" : "VIOLATED");
    }
  }

  bench::section("observation (iii): thresholds scale with RAM");
  for (const auto& violin : violins) {
    if (violin.by_state[1].box.n > 0) {
      std::printf("  %lldMB device signals Moderate around %.0f MB available\n",
                  static_cast<long long>(violin.ram_mb), violin.by_state[1].mean);
    }
  }
  return 0;
}
