// Shared helpers for the per-figure/table bench binaries. Each binary
// regenerates one table or figure from the paper and prints the same
// rows/series the paper reports, with the paper's reported values beside
// the measured ones where the paper states them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace mvqoe::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Paper-vs-measured line for EXPERIMENTS.md cross-checking.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit) {
  std::printf("  %-52s paper: %8.1f %-4s measured: %8.1f %s\n", what.c_str(), paper,
              unit.c_str(), measured, unit.c_str());
}

/// Number of repetitions per experiment cell. The paper uses five; the
/// MVQOE_RUNS environment variable can lower it for quick smoke runs.
inline int runs_per_cell(int fallback = 5) {
  if (const char* env = std::getenv("MVQOE_RUNS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// Video duration (seconds) used by the sweep benches. The paper streams
/// a few minutes; 60 simulated seconds keeps the full suite fast while
/// giving every mechanism time to express itself.
inline int video_duration_s(int fallback = 60) {
  if (const char* env = std::getenv("MVQOE_DURATION_S")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// Shared sweep for the Fig 9/11/18/19 drop panels and Table 2/3 crash
/// tables: device x platform x {resolutions} x {30,60} x pressure states.
struct SweepSpec {
  core::DeviceProfile device;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  std::vector<int> heights = {240, 360, 480, 720, 1080};
  std::vector<int> fps = {30, 60};
  std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal,
                                            mem::PressureLevel::Moderate,
                                            mem::PressureLevel::Critical};
};

struct SweepCell {
  int height = 0;
  int fps = 0;
  mem::PressureLevel state{};
  qoe::RunAggregate aggregate;
};

inline std::vector<SweepCell> run_sweep(const SweepSpec& sweep, int runs, int duration_s) {
  std::vector<SweepCell> cells;
  for (const auto state : sweep.states) {
    for (const int fps : sweep.fps) {
      for (const int height : sweep.heights) {
        core::VideoRunSpec spec;
        spec.device = sweep.device;
        spec.platform = sweep.platform;
        spec.height = height;
        spec.fps = fps;
        spec.pressure = state;
        spec.asset = video::dubai_flow_motion(duration_s);
        spec.seed = 1000 + height + fps + static_cast<int>(state) * 7;
        SweepCell cell{height, fps, state, core::run_video_repeated(spec, runs)};
        cells.push_back(std::move(cell));
        std::fflush(stdout);
      }
    }
  }
  return cells;
}

inline const char* state_name(mem::PressureLevel level) { return mem::to_string(level); }

inline void print_drop_panel(const std::vector<SweepCell>& cells) {
  section("mean frame-drop rate, % (95% CI), played portion");
  std::printf("  %-9s %-4s", "state", "fps");
  for (const auto& cell : cells) {
    if (cell.state == cells.front().state && cell.fps == cells.front().fps) {
      std::printf("  %10dp", cell.height);
    }
  }
  std::printf("\n");
  mem::PressureLevel state = cells.front().state;
  int fps = -1;
  for (const auto& cell : cells) {
    if (cell.fps != fps || cell.state != state) {
      state = cell.state;
      fps = cell.fps;
      std::printf("\n  %-9s %-4d", state_name(state), fps);
    }
    const auto drop = cell.aggregate.drop_rate();
    std::printf("  %5.1f±%-4.1f", 100.0 * drop.mean, 100.0 * drop.ci95);
  }
  std::printf("\n");
}

inline void print_crash_panel(const std::vector<SweepCell>& cells) {
  section("client crash rate, % of runs");
  mem::PressureLevel state = cells.front().state;
  int fps = -1;
  std::printf("  %-9s %-4s\n", "state", "fps");
  for (const auto& cell : cells) {
    if (cell.fps != fps || cell.state != state) {
      state = cell.state;
      fps = cell.fps;
      std::printf("\n  %-9s %-4d", state_name(state), fps);
    }
    std::printf("  %5.0f%%    ", cell.aggregate.crash_rate_percent());
  }
  std::printf("\n");
}

inline const SweepCell* find_cell(const std::vector<SweepCell>& cells, int height, int fps,
                                  mem::PressureLevel state) {
  for (const auto& cell : cells) {
    if (cell.height == height && cell.fps == fps && cell.state == state) return &cell;
  }
  return nullptr;
}

}  // namespace mvqoe::bench
