// Shared helpers for the per-figure/table bench binaries. Each binary
// regenerates one table or figure from the paper and prints the same
// rows/series the paper reports, with the paper's reported values beside
// the measured ones where the paper states them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "runner/scenario_batch.hpp"
#include "runner/video_batch.hpp"

namespace mvqoe::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Paper-vs-measured line for EXPERIMENTS.md cross-checking.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit) {
  std::printf("  %-52s paper: %8.1f %-4s measured: %8.1f %s\n", what.c_str(), paper,
              unit.c_str(), measured, unit.c_str());
}

/// Number of repetitions per experiment cell. The paper uses five; the
/// MVQOE_RUNS environment variable can lower it for quick smoke runs.
inline int runs_per_cell(int fallback = 5) {
  if (const char* env = std::getenv("MVQOE_RUNS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// Video duration (seconds) used by the sweep benches. The paper streams
/// a few minutes; 60 simulated seconds keeps the full suite fast while
/// giving every mechanism time to express itself.
inline int video_duration_s(int fallback = 60) {
  if (const char* env = std::getenv("MVQOE_DURATION_S")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// Worker threads for the sweep benches: --jobs N / --jobs=N on the
/// command line, else MVQOE_JOBS, else every hardware thread. jobs == 1
/// is the serial fallback (byte-identical per-run results by contract).
inline int jobs_from_args(int argc, char** argv) {
  return runner::jobs_from_args(argc, argv);
}

/// Shared sweep for the Fig 9/11/18/19 drop panels and Table 2/3 crash
/// tables: device x platform x {resolutions} x {30,60} x pressure states.
struct SweepSpec {
  core::DeviceProfile device;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  std::vector<int> heights = {240, 360, 480, 720, 1080};
  std::vector<int> fps = {30, 60};
  std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal,
                                            mem::PressureLevel::Moderate,
                                            mem::PressureLevel::Critical};
  /// Batch seed; per-cell seeds are derive_seed streams off this (the old
  /// additive `1000 + height + fps + state*7` formula let distinct cells
  /// alias to the same seed and correlate their runs).
  std::uint64_t base_seed = 1000;
};

struct SweepCell {
  int height = 0;
  int fps = 0;
  mem::PressureLevel state{};
  qoe::RunAggregate aggregate;
};

/// Run the grid on the batch runner: (cell, run) tasks fan out across
/// `jobs` workers, results reduce in deterministic grid/run order. When a
/// json_name is given the cells are also dumped to BENCH_<json_name>.json.
inline std::vector<SweepCell> run_sweep(const SweepSpec& sweep, int runs, int duration_s,
                                        int jobs = 0, const char* json_name = nullptr) {
  // Declarative proto (DESIGN.md §11): one custom-device scenario with a
  // single video workload; each grid cell retargets its height/fps/seed.
  scenario::ScenarioSpec proto;
  proto.family.clear();
  proto.device_override = sweep.device;
  scenario::VideoWorkloadSpec video;
  video.platform = sweep.platform;
  video.duration_s = duration_s;
  proto.workloads.emplace_back(std::move(video));
  const auto grid = runner::run_scenario_sweep_grid(proto, sweep.states, sweep.fps, sweep.heights,
                                                    runs, jobs, sweep.base_seed);
  if (json_name != nullptr) {
    const std::string path =
        runner::write_sweep_json(json_name, grid, runs, runner::resolve_jobs(jobs),
                                 sweep.base_seed);
    if (!path.empty()) std::printf("machine-readable: %s\n", path.c_str());
  }
  std::vector<SweepCell> cells;
  cells.reserve(grid.size());
  for (const auto& cell : grid) {
    cells.push_back(SweepCell{cell.height, cell.fps, cell.state, cell.aggregate});
  }
  return cells;
}

inline const char* state_name(mem::PressureLevel level) { return mem::to_string(level); }

inline void print_drop_panel(const std::vector<SweepCell>& cells) {
  section("mean frame-drop rate, % (95% CI), played portion");
  std::printf("  %-9s %-4s", "state", "fps");
  for (const auto& cell : cells) {
    if (cell.state == cells.front().state && cell.fps == cells.front().fps) {
      std::printf("  %10dp", cell.height);
    }
  }
  std::printf("\n");
  mem::PressureLevel state = cells.front().state;
  int fps = -1;
  for (const auto& cell : cells) {
    if (cell.fps != fps || cell.state != state) {
      state = cell.state;
      fps = cell.fps;
      std::printf("\n  %-9s %-4d", state_name(state), fps);
    }
    const auto drop = cell.aggregate.drop_rate();
    std::printf("  %5.1f±%-4.1f", 100.0 * drop.mean, 100.0 * drop.ci95);
  }
  std::printf("\n");
}

inline void print_crash_panel(const std::vector<SweepCell>& cells) {
  section("client crash rate, % of runs");
  mem::PressureLevel state = cells.front().state;
  int fps = -1;
  std::printf("  %-9s %-4s\n", "state", "fps");
  for (const auto& cell : cells) {
    if (cell.fps != fps || cell.state != state) {
      state = cell.state;
      fps = cell.fps;
      std::printf("\n  %-9s %-4d", state_name(state), fps);
    }
    std::printf("  %5.0f%%    ", cell.aggregate.crash_rate_percent());
  }
  std::printf("\n");
}

inline const SweepCell* find_cell(const std::vector<SweepCell>& cells, int height, int fps,
                                  mem::PressureLevel state) {
  for (const auto& cell : cells) {
    if (cell.height == height && cell.fps == fps && cell.state == state) return &cell;
  }
  return nullptr;
}

}  // namespace mvqoe::bench
