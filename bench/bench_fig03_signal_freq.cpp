// Figure 3: memory-pressure signals per hour vs device RAM size, one
// scatter per level. Paper: 63% of devices received >= 1 signal/hour,
// 19% received > 10 Critical signals/hour, 6.3% > 70 signals/hour.
#include <algorithm>

#include "bench_util.hpp"
#include "study_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 3 - memory-pressure signal frequency vs RAM",
                "Waheed et al., CoNEXT'22, Fig. 3 / Table 1 row 1");

  const auto data = bench::run_scaled_study();
  const auto& results = data.results;
  auto rows = study::signal_scatter(results);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.ram_mb != b.ram_mb ? a.ram_mb < b.ram_mb
                                : a.critical_per_hour > b.critical_per_hour;
  });

  bench::section("scatter rows (signals/hour by level)");
  std::printf("  %6s  %10s  %10s  %10s  %10s\n", "RAM", "Moderate/h", "Low/h", "Critical/h",
              "total/h");
  for (const auto& row : rows) {
    std::printf("  %4lldMB  %10.2f  %10.2f  %10.2f  %10.2f\n",
                static_cast<long long>(row.ram_mb), row.moderate_per_hour, row.low_per_hour,
                row.critical_per_hour,
                row.moderate_per_hour + row.low_per_hour + row.critical_per_hour);
  }

  const auto summary = study::summarize(results);
  bench::section("paper-vs-measured");
  bench::compare("devices with >= 1 signal/hour", 63.0, summary.percent_with_any_signal_per_hour,
                 "%");
  bench::compare("devices with > 10 Critical signals/hour", 19.0,
                 summary.percent_with_10_critical_per_hour, "%");
  bench::compare("devices with > 70 signals/hour", 6.3,
                 summary.percent_over_70_signals_per_hour, "%");
  return 0;
}
