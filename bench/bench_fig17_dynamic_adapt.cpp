// Figure 17: dynamically varying the frame rate (60 -> 24 -> 48) during
// one 480p session under organic Moderate pressure on the Nokia 1.
// Paper: heavy FPS losses at 60, mitigated by switching to 24.
// We additionally run the same scenario under the §6-inspired
// MemoryAwareAbr to quantify the proposal the paper motivates.
#include "video/abr_policy.hpp"
#include "bench_util.hpp"

namespace {

mvqoe::core::VideoRunResult run_with(mvqoe::video::AbrPolicy* abr, int duration,
                                     std::uint64_t seed) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 480;
  spec.fps = 60;
  spec.organic_background_apps = 8;  // paper: pressure introduced organically
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = seed;
  spec.abr = abr;
  return core::run_video(spec);
}

void print_series(const char* label, const mvqoe::core::VideoRunResult& result) {
  mvqoe::bench::section(label);
  const auto& series = result.metrics.presented_per_second;
  for (std::size_t second = 0; second < series.size(); second += 2) {
    std::printf("  t=%3zus fps=%3d |%s\n", second, series[second],
                mvqoe::stats::ascii_bar(series[second] / 60.0, 30).c_str());
  }
  std::printf("  drop rate %.1f%%  crashed=%s\n", 100.0 * result.outcome.drop_rate,
              result.outcome.crashed ? "yes" : "no");
}

}  // namespace

int main() {
  using namespace mvqoe;
  bench::header("Figure 17 - dynamic frame-rate switching under organic Moderate (Nokia 1, 480p)",
                "Waheed et al., CoNEXT'22, Fig. 17 / Sec. 6");
  const int duration = bench::video_duration_s(48);
  const video::BitrateLadder ladder = video::BitrateLadder::youtube();
  const int segments = duration / 4;

  // The paper's scripted sequence: 60 -> 24 -> 48.
  std::vector<video::ScheduledAbr::Step> steps;
  steps.push_back({0, *ladder.find(480, 60)});
  steps.push_back({segments / 3, *ladder.find(480, 24)});
  steps.push_back({2 * segments / 3, *ladder.find(480, 48)});
  video::ScheduledAbr scripted(steps);
  const auto scripted_result = run_with(&scripted, duration, 5);
  print_series("scripted 60 -> 24 -> 48 (per-second rendered FPS)", scripted_result);

  // Per-phase means, as the paper narrates them.
  const auto& series = scripted_result.metrics.presented_per_second;
  const std::size_t phase = series.size() / 3;
  const int encoded[] = {60, 24, 48};
  bench::section("phase means");
  for (int p = 0; p < 3; ++p) {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t s = phase * p; s < std::min(series.size(), phase * (p + 1)); ++s) {
      total += series[s];
      ++count;
    }
    std::printf("  encoded %2d FPS -> mean rendered %5.1f FPS\n", encoded[p],
                count > 0 ? total / count : 0.0);
  }

  // The actionable takeaway: a memory-aware policy reacting to trim
  // signals does the switch automatically.
  bench::section("memory-aware ABR vs fixed 60 FPS (same organic pressure)");
  const auto fixed = run_with(nullptr, duration, 6);
  video::MemoryAwareAbr aware(std::make_unique<video::RateBasedAbr>(60));
  const auto adaptive = run_with(&aware, duration, 6);
  std::printf("  fixed 480p60:      drop %5.1f%%  crashed=%s\n", 100.0 * fixed.outcome.drop_rate,
              fixed.outcome.crashed ? "yes" : "no");
  std::printf("  memory-aware:      drop %5.1f%%  crashed=%s  (final rung %s)\n",
              100.0 * adaptive.outcome.drop_rate, adaptive.outcome.crashed ? "yes" : "no",
              adaptive.metrics.rung_history.empty()
                  ? "?"
                  : adaptive.metrics.rung_history.back().label().c_str());
  return 0;
}
