// Micro-benchmarks of the simulator's hot paths (google-benchmark):
// RNG, event queue, scheduler context switching, reclaim batches, victim
// selection, and an end-to-end per-simulated-second video cost.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "stats/rng.hpp"
#include "study/device_sim.hpp"

namespace {

using namespace mvqoe;

void BM_RngNext(benchmark::State& state) {
  stats::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngNormal(benchmark::State& state) {
  stats::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(sim::usec(i), [] {});
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleAndRun);

void BM_SchedulerContextSwitches(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    trace::Tracer tracer;
    sched::SchedulerConfig config;
    config.cores = {sched::CoreConfig{1.0}};
    sched::Scheduler scheduler(engine, tracer, config);
    sched::ThreadSpec spec;
    spec.name = "a";
    spec.pid = 1;
    const auto a = scheduler.create_thread(spec);
    spec.name = "b";
    const auto b = scheduler.create_thread(spec);
    std::function<void()> loop_a = [&] { scheduler.run_work(a, 1000.0, loop_a); };
    std::function<void()> loop_b = [&] { scheduler.run_work(b, 1000.0, loop_b); };
    loop_a();
    loop_b();
    engine.run_until(sim::sec(1));
  }
  state.SetLabel("two threads sharing one core for 1 simulated second");
}
BENCHMARK(BM_SchedulerContextSwitches);

void BM_ReclaimBatchPressure(benchmark::State& state) {
  sim::Engine engine;
  mem::MemoryConfig config;
  config.total = mem::pages_from_mb(1024);
  mem::MemoryManager manager(engine, config);
  manager.register_process(1, "fg", mem::OomAdj::kForeground);
  for (mem::ProcessId pid = 10; pid < 20; ++pid) {
    manager.register_process(pid, "cached", mem::OomAdj::kCached);
    manager.alloc_anon(pid, mem::pages_from_mb(20), 0, nullptr);
  }
  for (auto _ : state) {
    manager.alloc_anon(1, mem::pages_from_mb(4), 0, nullptr);
    manager.free_anon(1, mem::pages_from_mb(4));
  }
  state.SetLabel("alloc/free cycle with reclaim pressure");
}
BENCHMARK(BM_ReclaimBatchPressure);

void BM_VictimSelection(benchmark::State& state) {
  mem::ProcessRegistry registry;
  for (mem::ProcessId pid = 1; pid <= 64; ++pid) {
    auto& process = registry.add(pid, "proc" + std::to_string(pid),
                                 pid % 2 == 0 ? mem::OomAdj::kCached : mem::OomAdj::kService);
    process.anon_resident = pid * 100;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.pick_victim(mem::OomAdj::kService));
  }
}
BENCHMARK(BM_VictimSelection);

void BM_VideoSecondSimulated(benchmark::State& state) {
  for (auto _ : state) {
    core::VideoRunSpec spec;
    spec.device = core::nexus5();
    spec.height = 480;
    spec.fps = 30;
    spec.asset = video::dubai_flow_motion(10);
    benchmark::DoNotOptimize(core::run_video(spec));
  }
  state.SetLabel("full 10-simulated-second 480p30 session on Nexus 5");
}
BENCHMARK(BM_VideoSecondSimulated);

void BM_StudyDeviceHour(benchmark::State& state) {
  auto population = study::generate_population(1, 7);
  population[0].ram_mb = 2048;
  population[0].interactive_hours = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(study::simulate_device(population[0], 3));
  }
  state.SetLabel("one simulated interactive hour of the field study");
}
BENCHMARK(BM_StudyDeviceHour);

}  // namespace
