// Fleet throughput benchmark -> BENCH_fleet.json.
//
// Runs the documented fleet smoke configuration (session 5 s, no
// warmup, 512-device shards, cold start) through the serial lane and
// the fork-CoW warm lane, and records devices/sec + peak RSS so fleet
// throughput gets a trajectory like BENCH_engine.json. The two lanes
// must agree on the campaign digest — the bench fails loudly if the
// warm path ever drifts from the cold reference.
//
// `--smoke` runs a reduced device count as the bench ctest tier and
// exits non-zero when serial throughput falls below a conservative
// floor (half of what the reference 1-core box sustains), so a fleet
// throughput regression fails the suite instead of silently landing.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "fleet/runner.hpp"
#include "runner/json_writer.hpp"

namespace mvqoe {
namespace {

fleet::FleetSpec smoke_spec(std::uint64_t devices) {
  fleet::FleetSpec spec;
  spec.devices = devices;
  spec.seed = 7;
  spec.session_s = 5;
  spec.sample_period_s = 5;
  spec.warmup_s = 0;
  spec.shard_size = 512;
  return spec;
}

struct LaneResult {
  double devices_per_sec = 0.0;
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t digest = 0;
};

LaneResult best_of(const fleet::FleetSpec& spec, bool warm, int reps) {
  LaneResult best;
  for (int r = 0; r < reps; ++r) {
    fleet::FleetRunOptions opts;
    opts.warm = warm;
    const fleet::FleetRunResult result = fleet::run_fleet(spec, opts);
    if (result.devices_per_sec > best.devices_per_sec) {
      best.devices_per_sec = result.devices_per_sec;
      best.wall_s = result.wall_s;
    }
    // Peak RSS is a process high-water mark: report the last lane
    // reading rather than the max so earlier lanes don't mask it.
    best.peak_rss_mb = result.peak_rss_mb;
    best.digest = result.digest;
  }
  return best;
}

}  // namespace
}  // namespace mvqoe

int main(int argc, char** argv) {
  using namespace mvqoe;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t devices = smoke ? 4096 : 20480;
  const int reps = smoke ? 2 : 3;
  const fleet::FleetSpec spec = smoke_spec(devices);

  const LaneResult serial = best_of(spec, /*warm=*/false, reps);
  std::printf("fleet serial   %8.0f devices/s  wall %.2fs  peak RSS %.1f MB  digest=%016llx\n",
              serial.devices_per_sec, serial.wall_s, serial.peak_rss_mb,
              static_cast<unsigned long long>(serial.digest));

  const LaneResult warm = best_of(spec, /*warm=*/true, 1);
  std::printf("fleet warm     %8.0f devices/s  wall %.2fs  digest=%016llx (%s)\n",
              warm.devices_per_sec, warm.wall_s, static_cast<unsigned long long>(warm.digest),
              warm.digest == serial.digest ? "matches cold" : "MISMATCH");

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "fleet")
      .field("smoke", smoke)
      .field("reps", reps)
      .field("target_devices_per_sec", 10000.0);
  json.key("config").begin_object()
      .field("devices", devices)
      .field("seed", spec.seed)
      .field("session_s", spec.session_s)
      .field("sample_period_s", spec.sample_period_s)
      .field("warmup_s", spec.warmup_s)
      .field("shard_size", spec.shard_size)
      .end_object();
  json.key("serial").begin_object()
      .field("devices_per_sec", serial.devices_per_sec)
      .field("wall_s", serial.wall_s)
      .field("peak_rss_mb", serial.peak_rss_mb)
      .end_object();
  json.key("warm_fork").begin_object()
      .field("devices_per_sec", warm.devices_per_sec)
      .field("wall_s", warm.wall_s)
      .field("digest_matches_cold", warm.digest == serial.digest)
      .end_object();
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(serial.digest));
  json.field("digest", digest_hex);
  json.end_object();

  const std::string path = runner::bench_json_path("fleet");
  if (runner::write_file(path, json.str())) {
    std::printf("machine-readable: %s\n", path.c_str());
  }

  if (warm.digest != serial.digest) {
    std::fprintf(stderr, "FAIL: warm-fork digest diverged from the cold serial lane\n");
    return 1;
  }
  if (smoke) {
    // Regression tripwire: the reference 1-core box sustains ~10-11k
    // devices/sec on this configuration; half that means a per-device
    // cost regression (template prep storm, fork in the cold path, ...).
    if (serial.devices_per_sec < 5000.0) {
      std::fprintf(stderr, "FAIL: fleet serial throughput %.0f devices/sec < 5000 floor\n",
                   serial.devices_per_sec);
      return 1;
    }
  }
  return 0;
}
