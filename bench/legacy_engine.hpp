// Faithful replica of the pre-arena sim::Engine, for bench_engine's
// baseline measurement. Per-event std::function storage in an
// unordered_map, lazily-cancelled ids in an unordered_set, shrink_to_fit
// compaction — and, like the original, all methods defined out-of-line in
// their own translation unit, so callers pay the same cross-TU call the
// old engine's clients paid (the arena engine is header-inline; that
// difference is part of what the bench measures).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mvqoe::bench {

class LegacyEngine {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  sim::Time now() const noexcept { return now_; }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  EventId schedule_at(sim::Time t, Callback fn);
  EventId schedule(sim::Time delay, Callback fn);
  bool cancel(EventId id);
  bool step();
  void run();

 private:
  struct Entry {
    sim::Time time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void maybe_compact();

  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  sim::Time last_dispatch_time_ = -1;
  std::uint64_t same_time_run_ = 0;
  std::uint64_t livelock_limit_ = 0;
  std::uint64_t livelock_trips_ = 0;
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mvqoe::bench
