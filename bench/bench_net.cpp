// Congestion-control flow-engine benchmark -> BENCH_net.json.
//
// Two lanes per registered controller (DESIGN.md §17):
//
//   * a flow-engine microbench: a fixed churn workload (concurrent
//     flows, rate steps, loss epochs) driven straight through net::Link,
//     recording flows/s and paced packet events/s so the cost of the
//     bottleneck queue + controller indirection gets a trajectory like
//     BENCH_policy.json, plus the per-CC queuing-delay distribution
//     (mean/max microseconds a packet waited in the droptail queue);
//
//   * a scenario lane: one Low-pressure fig16 cell with competing cross
//     traffic, recording the ABR/CC interplay under reclaim stalls
//     (drop rate, rebuffers, startup delay) per controller.
//
// Two invariants are checked on every run, not just smoke: the
// microbench digest is identical across repetitions (a controller whose
// decisions depend on wall clock or address layout would break
// kill-and-resume), and the four lanes are pairwise distinct (two
// controllers producing byte-identical link state means the CC axis has
// silently become a no-op). `--smoke` additionally fails when the flow
// engine's packet throughput falls below a conservative floor.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "runner/json_writer.hpp"
#include "scenario/driver.hpp"
#include "scenario/spec.hpp"

// Sanitizer instrumentation slows the flow engine ~10x, which says
// nothing about the CC plumbing, so the absolute throughput floor is
// waived under ASan/TSan (digest and distinctness gates still apply).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MVQOE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MVQOE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MVQOE_BENCH_SANITIZED
#define MVQOE_BENCH_SANITIZED 0
#endif

namespace mvqoe {
namespace {

struct MicroResult {
  std::uint64_t flows_done = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  double qdelay_mean_us = 0.0;
  double qdelay_max_us = 0.0;
  std::uint64_t digest = 0;
};

/// Fixed churn workload: `rounds` waves of six concurrent flows with a
/// rate dip every other wave and a loss epoch every third, then drain.
MicroResult run_micro(const std::string& cc, int rounds) {
  sim::Engine engine;
  net::LinkConfig cfg;
  cfg.rate_mbps = 16.0;
  net::Link link(engine, cfg, net::NetSpec{cc, {}});

  MicroResult out;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < 6; ++i) {
      link.transfer(192 * 1024 + static_cast<std::uint64_t>(i) * 64 * 1024,
                    [&out](bool ok) { out.flows_done += ok ? 1 : 0; });
    }
    link.set_rate_mbps(round % 2 == 0 ? 16.0 : 6.0);
    link.set_loss_rate(round % 3 == 0 ? 0.02 : 0.0);
    engine.run_until(engine.now() + sim::msec(150));
  }
  link.set_rate_mbps(16.0);
  link.set_loss_rate(0.0);
  engine.run();

  out.packets_sent = link.packets_sent();
  out.packets_dropped = link.packets_dropped();
  out.qdelay_mean_us = link.queue_delay().mean();
  out.qdelay_max_us = static_cast<double>(link.queue_delay().max);
  out.digest = link.digest();
  return out;
}

struct ScenarioRow {
  std::string cc;
  double drop_percent = 0.0;
  int rebuffer_events = 0;
  double startup_delay_s = 0.0;
  bool completed = false;
};

/// One Low-pressure fig16 cell per controller, with competing cross
/// traffic on the non-fifo lanes — the reclaim stalls of the memory
/// axis and the queuing of the network axis land on the same session.
ScenarioRow run_scenario(const std::string& cc, int duration_s) {
  scenario::ScenarioSpec spec =
      scenario::single_video("fig16", 480, 30, duration_s, mem::PressureLevel::Low, 5);
  spec.net.cc = cc;
  if (cc != "fifo") {
    scenario::CrossTrafficWorkloadSpec cross;
    cross.label = "cross";
    cross.bulk_flows = 1;
    cross.onoff_flows = 1;
    cross.on_s = 2;
    cross.off_s = 1;
    cross.chunk_bytes = 512 * 1024;
    cross.seed = 13;
    spec.workloads.emplace_back(cross);
  }
  scenario::ScenarioDriver driver(std::move(spec));
  const scenario::ScenarioResult result = driver.run();

  ScenarioRow row;
  row.cc = cc;
  row.completed = result.status == core::RunStatus::Completed && !result.sessions.empty();
  if (!result.sessions.empty()) {
    const qoe::RunOutcome& outcome = result.sessions.front().result.outcome;
    row.drop_percent = outcome.drop_rate * 100.0;
    row.rebuffer_events = outcome.rebuffer_events;
    row.startup_delay_s = outcome.startup_delay_s;
  }
  return row;
}

}  // namespace
}  // namespace mvqoe

int main(int argc, char** argv) {
  using namespace mvqoe;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int rounds = smoke ? 8 : 24;
  const int reps = smoke ? 2 : 3;
  const int scenario_duration_s = smoke ? 6 : 12;
  const std::vector<std::string> ccs = net::cc_names();

  struct Lane {
    std::string cc;
    MicroResult micro;
    double flows_per_sec = 0.0;
    double packets_per_sec = 0.0;
    double wall_s = 0.0;
  };
  std::vector<Lane> lanes;
  bool digest_stable = true;
  for (const std::string& cc : ccs) {
    Lane lane;
    lane.cc = cc;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const MicroResult result = run_micro(cc, rounds);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (r == 0) {
        lane.micro = result;
      } else if (result.digest != lane.micro.digest) {
        digest_stable = false;
        std::fprintf(stderr, "FAIL: '%s' microbench digest varied across repetitions\n",
                     cc.c_str());
      }
      const double flows_per_sec = static_cast<double>(result.flows_done) / wall_s;
      if (flows_per_sec > lane.flows_per_sec) {
        lane.flows_per_sec = flows_per_sec;
        lane.packets_per_sec = static_cast<double>(result.packets_sent) / wall_s;
        lane.wall_s = wall_s;
      }
    }
    std::printf("net %-6s %10.0f flows/s %12.0f pkts/s  qdelay mean %8.1f us max %8.0f us"
                "  digest=%016llx\n",
                lane.cc.c_str(), lane.flows_per_sec, lane.packets_per_sec,
                lane.micro.qdelay_mean_us, lane.micro.qdelay_max_us,
                static_cast<unsigned long long>(lane.micro.digest));
    lanes.push_back(lane);
  }

  bool lanes_distinct = true;
  for (std::size_t a = 0; a < lanes.size(); ++a) {
    for (std::size_t b = a + 1; b < lanes.size(); ++b) {
      if (lanes[a].micro.digest == lanes[b].micro.digest) {
        lanes_distinct = false;
        std::fprintf(stderr, "FAIL: lanes '%s' and '%s' produced identical link state\n",
                     lanes[a].cc.c_str(), lanes[b].cc.c_str());
      }
    }
  }

  std::vector<ScenarioRow> rows;
  bool scenarios_ok = true;
  for (const std::string& cc : ccs) {
    const ScenarioRow row = run_scenario(cc, scenario_duration_s);
    if (!row.completed) {
      scenarios_ok = false;
      std::fprintf(stderr, "FAIL: scenario lane '%s' did not complete\n", cc.c_str());
    }
    std::printf("  fig16/Low x %-6s drop %8.4f%%  rebuffers %2d  startup %6.3fs\n",
                row.cc.c_str(), row.drop_percent, row.rebuffer_events, row.startup_delay_s);
    rows.push_back(row);
  }

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "net")
      .field("smoke", smoke)
      .field("reps", reps)
      .field("rounds", rounds)
      .field("target_packets_per_sec", 500000.0);
  json.key("lanes").begin_array();
  for (const Lane& lane : lanes) {
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  static_cast<unsigned long long>(lane.micro.digest));
    json.begin_object()
        .field("cc", lane.cc)
        .field("flows_per_sec", lane.flows_per_sec)
        .field("packets_per_sec", lane.packets_per_sec)
        .field("packets_dropped", lane.micro.packets_dropped)
        .field("queue_delay_mean_us", lane.micro.qdelay_mean_us)
        .field("queue_delay_max_us", lane.micro.qdelay_max_us)
        .field("wall_s", lane.wall_s)
        .field("digest", digest_hex)
        .end_object();
  }
  json.end_array();
  json.key("scenario").begin_array();
  for (const ScenarioRow& row : rows) {
    json.begin_object()
        .field("cc", row.cc)
        .field("drop_percent", row.drop_percent)
        .field("rebuffer_events", row.rebuffer_events)
        .field("startup_delay_s", row.startup_delay_s)
        .field("completed", row.completed)
        .end_object();
  }
  json.end_array();
  json.field("digest_stable", digest_stable).field("lanes_distinct", lanes_distinct);
  json.end_object();

  const std::string path = runner::bench_json_path("net");
  if (runner::write_file(path, json.str())) {
    std::printf("machine-readable: %s\n", path.c_str());
  }

  if (!digest_stable || !lanes_distinct || !scenarios_ok) return 1;
  if (smoke && !MVQOE_BENCH_SANITIZED) {
    // Regression tripwire: the reference 1-core box pushes well over a
    // million paced packets/sec through the flow engine on the smoke
    // workload; a tenth of that means a per-packet cost regression (an
    // allocation per send, controller state churn in the ack path, ...).
    for (const Lane& lane : lanes) {
      if (lane.cc == "fifo") continue;  // no packets on the serial path
      if (lane.packets_per_sec < 100000.0) {
        std::fprintf(stderr, "FAIL: '%s' packet throughput %.0f pkts/sec < 100000 floor\n",
                     lane.cc.c_str(), lane.packets_per_sec);
        return 1;
      }
    }
  }
  return 0;
}
