// Table 4: mean time spent by video client threads in Running / Runnable
// / Runnable (Preempted) under Normal vs Moderate pressure (Nokia 1,
// 480p60, 3 runs). Paper: Running -8.5%, Runnable +24.2%, Runnable
// (Preempted) +97.8% moving from Normal to Moderate.
#include "bench_util.hpp"
#include "trace/analysis.hpp"

namespace {

mvqoe::trace::StateTimeTable run_once(mvqoe::mem::PressureLevel state, std::uint64_t seed,
                                      int duration) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 720;  // our model expresses the paper's 480p60-Moderate degradation
                      // one rung higher; same mechanisms, documented in EXPERIMENTS.md
  spec.fps = 60;
  spec.pressure = state;
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = seed;
  core::VideoExperiment experiment(spec);
  experiment.run();
  // The paper sums the three key client threads: the browser main
  // thread, MediaCodec, and SurfaceFlinger.
  std::vector<trace::ThreadId> tids = experiment.session().client_thread_ids();
  tids.push_back(experiment.session().surfaceflinger_tid());
  return trace::state_times(experiment.testbed().tracer, tids,
                            experiment.playback_start());
}

}  // namespace

int main() {
  using namespace mvqoe;
  bench::header("Table 4 - video client thread states, Normal vs Moderate (Nokia 1, 720p60)",
                "Waheed et al., CoNEXT'22, Table 4");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s();

  stats::Accumulator normal[4];
  stats::Accumulator moderate[4];
  for (int i = 0; i < runs; ++i) {
    const auto n = run_once(mem::PressureLevel::Normal, 100 + i, duration);
    const auto m = run_once(mem::PressureLevel::Moderate, 200 + i, duration);
    normal[0].add(n.running);
    normal[1].add(n.runnable);
    normal[2].add(n.runnable_preempted);
    normal[3].add(n.blocked_io);
    moderate[0].add(m.running);
    moderate[1].add(m.runnable);
    moderate[2].add(m.runnable_preempted);
    moderate[3].add(m.blocked_io);
    std::fflush(stdout);
  }

  // Note: in this simulator's 4-core model the device has spare CPU, so
  // pressure-induced waiting expresses mostly as memory/I/O stall time
  // (Blocked I/O: direct reclaim, swap-in, refault reads) rather than
  // runqueue time. The paper's claim under test — video threads *wait
  // more* under Moderate — is checked over the waiting categories.
  const char* rows[] = {"Running", "Runnable", "Runnable (Preempted)", "Blocked I/O (stalls)"};
  const double paper_increase[] = {-8.5, 24.2, 97.8, 0.0};
  std::printf("\n%-22s  %10s  %12s  %10s   (paper %%)\n", "Process state", "Normal (s)",
              "Moderate (s)", "Increase%");
  for (int i = 0; i < 4; ++i) {
    const double n = normal[i].mean();
    const double m = moderate[i].mean();
    const double increase = n > 0 ? 100.0 * (m - n) / n : 0.0;
    if (i < 3) {
      std::printf("%-22s  %10.2f  %12.2f  %+9.1f%%   (%+.1f%%)\n", rows[i], n, m, increase,
                  paper_increase[i]);
    } else {
      std::printf("%-22s  %10.2f  %12.2f  %+9.1f%%   (n/a)\n", rows[i], n, m, increase);
    }
  }
  const double wait_normal = normal[1].mean() + normal[2].mean() + normal[3].mean();
  const double wait_moderate = moderate[1].mean() + moderate[2].mean() + moderate[3].mean();
  std::printf("\ntotal waiting (Runnable + Preempted + stalls): %.2fs -> %.2fs (%+.1f%%)\n",
              wait_normal, wait_moderate,
              wait_normal > 0 ? 100.0 * (wait_moderate - wait_normal) / wait_normal : 0.0);
  std::printf("Shape check (paper): under Moderate the client waits substantially more: %s\n",
              wait_moderate > wait_normal * 1.2 ? "HOLDS" : "violated");
  return 0;
}
