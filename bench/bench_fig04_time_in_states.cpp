// Figure 4: percentage of time devices spent in each memory-pressure
// state vs RAM size. Paper: 27% of devices spent >= 2% of time in
// Moderate, 10% spent > 4% in Critical, two devices spent > 40% in
// Critical; Table 1: 10% of devices > 50% of time in high pressure, 35%
// >= 2%.
#include <algorithm>

#include "bench_util.hpp"
#include "study_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 4 - time in memory-pressure states vs RAM",
                "Waheed et al., CoNEXT'22, Fig. 4 / Table 1 row 2");

  const auto data = bench::run_scaled_study();
  const auto& results = data.results;
  auto rows = study::time_in_states(results);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.ram_mb != b.ram_mb ? a.ram_mb < b.ram_mb : a.fraction[3] > b.fraction[3];
  });

  bench::section("per-device time shares");
  std::printf("  %6s  %9s  %9s  %9s  %9s\n", "RAM", "Normal%", "Moderate%", "Low%", "Critical%");
  for (const auto& row : rows) {
    std::printf("  %4lldMB  %9.2f  %9.2f  %9.2f  %9.2f\n", static_cast<long long>(row.ram_mb),
                100.0 * row.fraction[0], 100.0 * row.fraction[1], 100.0 * row.fraction[2],
                100.0 * row.fraction[3]);
  }

  double moderate2 = 0.0;
  double critical4 = 0.0;
  double critical40 = 0.0;
  for (const auto& row : rows) {
    if (row.fraction[1] >= 0.02) ++moderate2;
    if (row.fraction[3] > 0.04) ++critical4;
    if (row.fraction[3] > 0.40) ++critical40;
  }
  const double n = static_cast<double>(rows.size());
  const auto summary = study::summarize(results);
  bench::section("paper-vs-measured");
  bench::compare("devices >= 2% time in Moderate", 27.0, 100.0 * moderate2 / n, "%");
  bench::compare("devices > 4% time in Critical", 10.0, 100.0 * critical4 / n, "%");
  bench::compare("devices > 40% time in Critical (count)", 2.0, critical40, "dev");
  bench::compare("devices > 50% time in high pressure", 10.0,
                 summary.percent_time50_high_pressure, "%");
  bench::compare("devices >= 2% time in high pressure", 35.0, summary.percent_time2_high_pressure,
                 "%");
  return 0;
}
