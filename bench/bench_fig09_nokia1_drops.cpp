// Figure 9 + Table 2: frame drops and crash rates on the Nokia 1 (1 GB)
// across resolutions, frame rates and pressure states. Paper anchors:
// 1080p30 drops 19% Normal / 53% Moderate / ~100% Critical; Table 2
// crash rates: Moderate 40% @480p, 100% @720p; Critical 100% everywhere.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 9 + Table 2 - Nokia 1 (1 GB) frame drops & crash rates",
                "Waheed et al., CoNEXT'22, Fig. 9 and Table 2");
  const int runs = bench::runs_per_cell();
  const int duration = bench::video_duration_s();
  const int jobs = bench::jobs_from_args(argc, argv);

  bench::SweepSpec sweep;
  sweep.device = core::nokia1();
  const auto cells = bench::run_sweep(sweep, runs, duration, jobs, "fig09_nokia1_drops");
  bench::print_drop_panel(cells);
  bench::print_crash_panel(cells);

  bench::section("paper-vs-measured anchors");
  using mem::PressureLevel;
  if (const auto* cell = bench::find_cell(cells, 1080, 30, PressureLevel::Normal)) {
    bench::compare("1080p30 drops @ Normal", 19.0, 100.0 * cell->aggregate.drop_rate().mean, "%");
  }
  if (const auto* cell = bench::find_cell(cells, 1080, 30, PressureLevel::Moderate)) {
    bench::compare("1080p30 drops @ Moderate", 53.0, 100.0 * cell->aggregate.drop_rate().mean,
                   "%");
  }
  if (const auto* cell = bench::find_cell(cells, 1080, 30, PressureLevel::Critical)) {
    bench::compare("1080p30 drops @ Critical", 100.0, 100.0 * cell->aggregate.drop_rate().mean,
                   "%");
  }
  if (const auto* cell = bench::find_cell(cells, 480, 30, PressureLevel::Moderate)) {
    bench::compare("Table 2: crash rate @ Moderate 480p30", 40.0,
                   cell->aggregate.crash_rate_percent(), "%");
  }
  if (const auto* cell = bench::find_cell(cells, 720, 30, PressureLevel::Moderate)) {
    bench::compare("Table 2: crash rate @ Moderate 720p30", 100.0,
                   cell->aggregate.crash_rate_percent(), "%");
  }
  for (const int fps : {30, 60}) {
    for (const int height : {480, 720}) {
      if (const auto* cell = bench::find_cell(cells, height, fps, PressureLevel::Critical)) {
        bench::compare("Table 2: crash rate @ Critical " + std::to_string(height) + "p" +
                           std::to_string(fps),
                       100.0, cell->aggregate.crash_rate_percent(), "%");
      }
    }
  }
  // High-resolution average under pressure (Table 1: "> 75% average
  // frame drops for high resolution videos (720p, 1080p)").
  double high_res = 0.0;
  int high_res_cells = 0;
  for (const auto state : {PressureLevel::Moderate, PressureLevel::Critical}) {
    for (const int fps : {30, 60}) {
      for (const int height : {720, 1080}) {
        if (const auto* cell = bench::find_cell(cells, height, fps, state)) {
          high_res += 100.0 * cell->aggregate.drop_rate().mean;
          ++high_res_cells;
        }
      }
    }
  }
  if (high_res_cells > 0) {
    bench::compare("mean drops, high-res (720/1080p) under pressure", 75.0,
                   high_res / high_res_cells, "%");
  }
  return 0;
}
