// Ablation for the paper's §7 OEM implication: "allocating more CPU
// resources even with a small RAM can improve video performance under
// memory pressure" (and Table 1's closing insight about devices with
// more cores / higher frequency).
//
// We hold RAM fixed at 1 GB (the Nokia 1's) and sweep the CPU: core
// count and frequency, measuring drops at the pressured 720p60 cell.
#include "bench_util.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Ablation - CPU resources vs QoE under memory pressure (1 GB RAM fixed)",
                "Waheed et al., CoNEXT'22, Sec. 7 'Original Equipment Manufacturers'");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s(40);

  struct Variant {
    const char* name;
    int cores;
    double freq;
  };
  const Variant variants[] = {
      {"2 x 1.1 GHz (cut-down)", 2, 1.1},
      {"4 x 1.1 GHz (Nokia 1)", 4, 1.1},
      {"4 x 1.6 GHz (faster cores)", 4, 1.6},
      {"8 x 1.1 GHz (more cores)", 8, 1.1},
      {"8 x 1.6 GHz (both)", 8, 1.6},
  };

  std::printf("%-28s  %14s  %10s\n", "CPU", "drops (95% CI)", "crash rate");
  double baseline = -1.0;  // the Nokia 1's own CPU
  bool upgrades_help = true;
  for (const Variant& variant : variants) {
    core::DeviceProfile device = core::nokia1();
    device.scheduler.cores.assign(static_cast<std::size_t>(variant.cores),
                                  sched::CoreConfig{variant.freq});
    core::VideoRunSpec spec;
    spec.device = device;
    spec.height = 720;
    spec.fps = 60;
    spec.pressure = mem::PressureLevel::Moderate;
    spec.asset = video::dubai_flow_motion(duration);
    const auto aggregate = core::run_video_repeated(spec, runs);
    const auto drop = aggregate.drop_rate();
    std::printf("%-28s  %6.1f±%-5.1f%%  %9.0f%%\n", variant.name, 100.0 * drop.mean,
                100.0 * drop.ci95, aggregate.crash_rate_percent());
    std::fflush(stdout);
    if (variant.cores == 4 && variant.freq == 1.1) {
      baseline = 100.0 * drop.mean;
    } else if (baseline >= 0.0 && 100.0 * drop.mean > baseline + 5.0) {
      upgrades_help = false;  // an upgrade over the Nokia 1 made QoE worse
    }
  }

  bench::section("shape check");
  std::printf("  every CPU upgrade over the Nokia 1 improves (or preserves) QoE: %s\n",
              upgrades_help ? "HOLDS" : "violated");
  std::printf("  (the memory bottleneck itself remains: even 8 x 1.6 GHz cannot fix a 1 GB\n"
              "  device's reclaim stalls entirely — CPU helps absorb the interference.)\n");
  return 0;
}
