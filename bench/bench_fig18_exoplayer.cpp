// Figure 18 (Appendix B.1): frame drops and crash rate with an
// ExoPlayer-based native app on the Nexus 5. Paper: ExoPlayer drops far
// fewer frames than Firefox (smaller memory footprint) but still crashes
// under high pressure.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 18 - ExoPlayer (native app) on Nexus 5",
                "Waheed et al., CoNEXT'22, Fig. 18 / Appendix B.1");
  const int runs = bench::runs_per_cell();
  const int duration = bench::video_duration_s();
  const int jobs = bench::jobs_from_args(argc, argv);

  bench::SweepSpec sweep;
  sweep.device = core::nexus5();
  sweep.platform = video::PlayerPlatform::ExoPlayer;
  sweep.heights = {480, 720, 1080};
  const auto exo = bench::run_sweep(sweep, runs, duration, jobs, "fig18_exoplayer");
  bench::print_drop_panel(exo);
  bench::print_crash_panel(exo);

  // Appendix B's comparison point: same cells with Firefox.
  sweep.platform = video::PlayerPlatform::Firefox;
  const auto firefox = bench::run_sweep(sweep, runs, duration, jobs);

  bench::section("shape check: ExoPlayer vs Firefox (drops under pressure)");
  for (const auto state : {mem::PressureLevel::Moderate, mem::PressureLevel::Critical}) {
    double exo_total = 0.0;
    double firefox_total = 0.0;
    int cells = 0;
    for (const int fps : {30, 60}) {
      for (const int height : {480, 720, 1080}) {
        const auto* a = bench::find_cell(exo, height, fps, state);
        const auto* b = bench::find_cell(firefox, height, fps, state);
        if (a != nullptr && b != nullptr) {
          exo_total += a->aggregate.drop_rate().mean;
          firefox_total += b->aggregate.drop_rate().mean;
          ++cells;
        }
      }
    }
    std::printf("  %-9s mean drops: ExoPlayer %5.1f%%  Firefox %5.1f%%  -> ExoPlayer lower: %s\n",
                bench::state_name(state), 100.0 * exo_total / cells,
                100.0 * firefox_total / cells, exo_total < firefox_total ? "YES" : "NO");
  }
  double exo_crash = 0.0;
  int crash_cells = 0;
  for (const auto& cell : exo) {
    if (cell.state == mem::PressureLevel::Critical) {
      exo_crash += cell.aggregate.crash_rate_percent();
      ++crash_cells;
    }
  }
  std::printf("  ExoPlayer still crashes under Critical: mean crash rate %.0f%% (paper: "
              "\"significant crashes\")\n",
              exo_crash / crash_cells);
  return 0;
}
