// Shared setup for the §3 field-study benches (Figures 1-6).
//
// The paper logged ~9950 hours across 80 devices. Signal rates, state
// dwell times and utilization are *intensive* statistics — they converge
// long before that — so the benches default to simulating a scaled-down
// observation window per device (MVQOE_STUDY_SCALE, default 0.1) and
// scale the > 10 h data-cleaning threshold with it.
#pragma once

#include <cstdlib>
#include <utility>

#include "runner/batch.hpp"
#include "study/analysis.hpp"

namespace mvqoe::bench {

inline double study_scale() {
  if (const char* env = std::getenv("MVQOE_STUDY_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0.0) return scale;
  }
  return 0.1;
}

struct StudyData {
  std::vector<study::StudyDevice> population;
  std::vector<study::DeviceStudyResult> results;  // cleaned
};

/// Each device is simulated with its own per-device seed, so the
/// population fans out across the batch runner; results keep population
/// order regardless of worker count (jobs == 1 is the serial reference).
inline StudyData run_scaled_study(int devices = 80, std::uint64_t seed = 42, int jobs = 0) {
  StudyData data;
  data.population = study::generate_population(devices, seed);
  const double scale = study_scale();
  for (auto& device : data.population) device.interactive_hours *= scale;
  auto batch = runner::run_batch(data.population.size(), jobs, [&data](std::size_t i) {
    return study::simulate_device(data.population[i], 1);
  });
  std::vector<study::DeviceStudyResult> results;
  results.reserve(batch.runs.size());
  for (auto& slot : batch.runs) {
    if (slot.ok) results.push_back(std::move(slot.value));
  }
  data.results = study::clean(std::move(results), 10.0 * scale);
  return data;
}

}  // namespace mvqoe::bench
