// Table 5: statistics for preemptions of video client threads by mmcqd
// under Normal vs Moderate pressure (Nokia 1, 720p60). Paper: the number
// of preemptions grows 26.6x, mmcqd's run-after-preempt 16.8x, and the
// client's wait to regain the CPU 27.5x; mmcqd becomes the top thread on
// all three statistics.
#include "bench_util.hpp"
#include "trace/analysis.hpp"

namespace {

mvqoe::trace::PreemptionStats run_once(mvqoe::mem::PressureLevel state, std::uint64_t seed,
                                       int duration) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 720;  // our model expresses the paper's 480p60-Moderate degradation
                      // one rung higher; same mechanisms, documented in EXPERIMENTS.md
  spec.fps = 60;
  spec.pressure = state;
  spec.asset = video::dubai_flow_motion(duration);
  spec.seed = seed;
  core::VideoExperiment experiment(spec);
  experiment.run();
  std::vector<trace::ThreadId> tids = experiment.session().client_thread_ids();
  tids.push_back(experiment.session().surfaceflinger_tid());
  return trace::preemption_stats(experiment.testbed().tracer, tids, "mmcqd");
}

}  // namespace

int main() {
  using namespace mvqoe;
  bench::header("Table 5 - mmcqd preemptions of video threads, Normal vs Moderate (Nokia 1)",
                "Waheed et al., CoNEXT'22, Table 5");
  const int runs = bench::runs_per_cell(3);
  const int duration = bench::video_duration_s();

  stats::Accumulator normal[3];
  stats::Accumulator moderate[3];
  for (int i = 0; i < runs; ++i) {
    const auto n = run_once(mem::PressureLevel::Normal, 100 + i, duration);
    const auto m = run_once(mem::PressureLevel::Moderate, 200 + i, duration);
    normal[0].add(static_cast<double>(n.count));
    normal[1].add(n.preemptor_run_seconds);
    normal[2].add(n.victim_wait_seconds);
    moderate[0].add(static_cast<double>(m.count));
    moderate[1].add(m.preemptor_run_seconds);
    moderate[2].add(m.victim_wait_seconds);
    std::fflush(stdout);
  }

  const char* rows[] = {"Mean number of preemptions", "Mean time mmcqd runs after preemption",
                        "Mean time video client waits to get CPU back"};
  const double paper_factor[] = {26.6, 16.8, 27.5};
  std::printf("\n%-46s  %10s  %10s  %8s  (paper x)\n", "", "Normal", "Moderate", "factor");
  for (int i = 0; i < 3; ++i) {
    const double n = normal[i].mean();
    const double m = moderate[i].mean();
    const double factor = n > 0 ? m / n : 0.0;
    if (i == 0) {
      std::printf("%-46s  %10.1f  %10.1f  %7.1fx  (%.1fx)\n", rows[i], n, m, factor,
                  paper_factor[i]);
    } else {
      std::printf("%-46s  %9.2fs  %9.2fs  %7.1fx  (%.1fx)\n", rows[i], n, m, factor,
                  paper_factor[i]);
    }
  }
  std::printf("\nShape check (paper): every mmcqd preemption statistic grows by an order of\n"
              "magnitude under Moderate pressure (reclaim-driven I/O at realtime priority).\n");
  return 0;
}
