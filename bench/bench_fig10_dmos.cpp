// Figure 10: differential mean opinion scores from the 99-participant
// survey. Participants watched the 240p60 clip under Normal (~3% drops)
// and Moderate (~35% drops) and rated the relative experience 1-5.
// Paper: the vast majority noticed the difference; 60 of 99 rated 1-2.
//
// This bench measures the two clips' drop rates from actual simulated
// sessions, then runs the survey opinion model over them.
#include "bench_util.hpp"
#include "qoe/mos.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace mvqoe;
  bench::header("Figure 10 - differential MOS, 99 raters, 240p60 Normal vs Moderate",
                "Waheed et al., CoNEXT'22, Fig. 10 / Sec. 4.3");
  const int duration = bench::video_duration_s();

  auto measure = [&](mem::PressureLevel state) {
    core::VideoRunSpec spec;
    spec.device = core::nokia1();
    spec.height = 240;
    spec.fps = 60;
    spec.pressure = state;
    spec.asset = video::dubai_flow_motion(duration);
    return core::run_video_repeated(spec, bench::runs_per_cell(3)).drop_rate().mean;
  };
  const double normal_drops = measure(mem::PressureLevel::Normal);
  const double moderate_drops = measure(mem::PressureLevel::Moderate);
  std::printf("clip A (Normal)   drop rate: %5.1f%%  (paper: ~3%%)\n", 100.0 * normal_drops);
  std::printf("clip B (Moderate) drop rate: %5.1f%%  (paper: ~35%%)\n", 100.0 * moderate_drops);

  // Rate the pair with the survey model — and also at the paper's exact
  // drop-rate anchors for a like-for-like histogram.
  const auto survey_measured =
      qoe::run_dmos_survey(qoe::MosModel{}, normal_drops, moderate_drops, 99, 42);
  const auto survey_anchor = qoe::run_dmos_survey(qoe::MosModel{}, 0.03, 0.35, 99, 42);

  bench::section("DMOS histogram at the paper's anchor drop rates (3% vs 35%)");
  stats::Histogram histogram(0.5, 5.5, 5);
  for (const int score : survey_anchor.scores) histogram.add(score);
  std::printf("%s", histogram.render(40).c_str());

  bench::section("paper-vs-measured");
  bench::compare("raters scoring 1 or 2 (anchor rates)", 60.0,
                 static_cast<double>(survey_anchor.count(1) + survey_anchor.count(2)), "of99");
  bench::compare("raters scoring 1 or 2 (measured rates)", 60.0,
                 static_cast<double>(survey_measured.count(1) + survey_measured.count(2)),
                 "of99");
  std::printf("  mean DMOS (anchor): %.2f   mean DMOS (measured clips): %.2f\n",
              survey_anchor.mean(), survey_measured.mean());
  return 0;
}
