// Figure 19 (Appendix B.2): frame drops and crash rate with Chrome on
// the Nexus 5. Paper: Chrome drops fewer frames than Firefox (it is more
// memory-efficient) but also suffers significant crashes under high
// pressure.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 19 - Chrome on Nexus 5",
                "Waheed et al., CoNEXT'22, Fig. 19 / Appendix B.2");
  const int runs = bench::runs_per_cell();
  const int duration = bench::video_duration_s();
  const int jobs = bench::jobs_from_args(argc, argv);

  bench::SweepSpec sweep;
  sweep.device = core::nexus5();
  sweep.platform = video::PlayerPlatform::Chrome;
  sweep.heights = {480, 720, 1080};
  const auto chrome = bench::run_sweep(sweep, runs, duration, jobs, "fig19_chrome");
  bench::print_drop_panel(chrome);
  bench::print_crash_panel(chrome);

  sweep.platform = video::PlayerPlatform::Firefox;
  const auto firefox = bench::run_sweep(sweep, runs, duration, jobs);

  bench::section("shape check: Chrome vs Firefox (drops under pressure)");
  for (const auto state : {mem::PressureLevel::Moderate, mem::PressureLevel::Critical}) {
    double chrome_total = 0.0;
    double firefox_total = 0.0;
    int cells = 0;
    for (const int fps : {30, 60}) {
      for (const int height : {480, 720, 1080}) {
        const auto* a = bench::find_cell(chrome, height, fps, state);
        const auto* b = bench::find_cell(firefox, height, fps, state);
        if (a != nullptr && b != nullptr) {
          chrome_total += a->aggregate.drop_rate().mean;
          firefox_total += b->aggregate.drop_rate().mean;
          ++cells;
        }
      }
    }
    std::printf("  %-9s mean drops: Chrome %5.1f%%  Firefox %5.1f%%  -> Chrome lower: %s\n",
                bench::state_name(state), 100.0 * chrome_total / cells,
                100.0 * firefox_total / cells, chrome_total < firefox_total ? "YES" : "NO");
  }
  return 0;
}
