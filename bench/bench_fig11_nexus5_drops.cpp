// Figure 11 + Table 3: frame drops and crash rates on the Nexus 5
// (2 GB). Paper: no drops at 30 FPS for 240-480p; significant drops at
// 60 FPS high resolutions (17% at 1080p60 under Critical, up to 25%
// overall); Table 3 crash rates: Moderate {720p30: 10, 1080p30: 100,
// 480p60: 0, 720p60: 100}, Critical {100, 100, 70, 100}.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  bench::header("Figure 11 + Table 3 - Nexus 5 (2 GB) frame drops & crash rates",
                "Waheed et al., CoNEXT'22, Fig. 11 and Table 3");
  const int runs = bench::runs_per_cell();
  const int duration = bench::video_duration_s();
  const int jobs = bench::jobs_from_args(argc, argv);

  bench::SweepSpec sweep;
  sweep.device = core::nexus5();
  const auto cells = bench::run_sweep(sweep, runs, duration, jobs, "fig11_nexus5_drops");
  bench::print_drop_panel(cells);
  bench::print_crash_panel(cells);

  bench::section("paper-vs-measured anchors");
  using mem::PressureLevel;
  for (const int height : {240, 360, 480}) {
    if (const auto* cell = bench::find_cell(cells, height, 30, PressureLevel::Moderate)) {
      bench::compare("30FPS low-res drops @ Moderate (" + std::to_string(height) + "p)", 0.0,
                     100.0 * cell->aggregate.drop_rate().mean, "%");
    }
  }
  if (const auto* cell = bench::find_cell(cells, 1080, 60, PressureLevel::Critical)) {
    bench::compare("1080p60 drops @ Critical", 17.0, 100.0 * cell->aggregate.drop_rate().mean,
                   "%");
  }
  const struct {
    int height;
    int fps;
    PressureLevel state;
    double paper;
  } crash_anchors[] = {
      {720, 30, PressureLevel::Moderate, 10.0},  {1080, 30, PressureLevel::Moderate, 100.0},
      {480, 60, PressureLevel::Moderate, 0.0},   {720, 60, PressureLevel::Moderate, 100.0},
      {720, 30, PressureLevel::Critical, 100.0}, {1080, 30, PressureLevel::Critical, 100.0},
      {480, 60, PressureLevel::Critical, 70.0},  {720, 60, PressureLevel::Critical, 100.0},
  };
  for (const auto& anchor : crash_anchors) {
    if (const auto* cell = bench::find_cell(cells, anchor.height, anchor.fps, anchor.state)) {
      bench::compare("Table 3: crash @ " + std::string(bench::state_name(anchor.state)) + " " +
                         std::to_string(anchor.height) + "p" + std::to_string(anchor.fps),
                     anchor.paper, cell->aggregate.crash_rate_percent(), "%");
    }
  }
  return 0;
}
