// Policy-lab throughput benchmark -> BENCH_policy.json.
//
// Runs the four-policy compare (DESIGN.md §16) on the documented smoke
// grid — one Low-state fig16 cell, every registered reclaim/kill policy
// — and records compare throughput (warm-sweep groups/sec) plus one QoE
// summary row per policy lane, so the cost of the policy indirection
// gets a trajectory like BENCH_fleet.json. Two invariants are checked
// on every run, not just smoke:
//
//   * the compare digest is identical across repetitions — a policy
//     whose decisions depend on wall clock or address layout would
//     break kill-and-resume, and this is the cheapest place to catch it;
//   * the four lanes are pairwise distinct — if two policies ever
//     produce byte-identical grids the policy axis has silently become
//     a no-op (a factory wiring regression, not a tuning question).
//
// `--smoke` is the bench ctest tier: it additionally fails when compare
// throughput falls below a conservative floor (about a fifth of what
// the reference 1-core box sustains), so a per-group cost regression in
// the policy plumbing fails the suite instead of silently landing.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/policy_campaign.hpp"
#include "runner/json_writer.hpp"
#include "runner/video_batch.hpp"
#include "snapshot/digest.hpp"

// Sanitizer instrumentation slows the compare ~10x, which says nothing
// about the policy plumbing, so the absolute throughput floor is waived
// under ASan/TSan (the digest and lane-distinctness gates still apply).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MVQOE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MVQOE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MVQOE_BENCH_SANITIZED
#define MVQOE_BENCH_SANITIZED 0
#endif

namespace mvqoe {
namespace {

campaign::PolicyCompareSpec bench_spec(bool smoke) {
  campaign::PolicyCompareSpec spec;
  spec.base.family = "fig16";
  spec.base.duration_s = smoke ? 8 : 16;
  spec.base.organic_apps = 0;
  spec.base.states = {mem::PressureLevel::Low};
  spec.base.fps = {30};
  spec.base.heights = {480};
  spec.base.runs = smoke ? 2 : 4;
  spec.base.seed = 5;
  for (const std::string& name : mem::mem_policy_names()) {
    spec.policies.push_back(mem::MemPolicySpec{name, {}});
  }
  return spec;
}

struct LaneSummary {
  std::string policy;
  double drop_percent = 0.0;
  double crash_percent = 0.0;
  double peak_pss_mb = 0.0;
  std::uint64_t digest = 0;
};

LaneSummary summarize(const campaign::PolicyLane& lane, int runs, std::uint64_t seed) {
  LaneSummary summary;
  summary.policy = lane.policy.name;
  qoe::RunAggregate rollup;
  for (const runner::SweepCellResult& cell : lane.cells) {
    for (const qoe::RunOutcome& outcome : cell.aggregate.outcomes()) rollup.add(outcome);
  }
  summary.drop_percent = rollup.drop_rate().mean * 100.0;
  summary.crash_percent = rollup.crash_rate_percent();
  summary.peak_pss_mb = rollup.peak_pss_mb().mean;
  snapshot::StateHash hash;
  hash.mix_bytes(runner::sweep_json("policy", lane.cells, runs, /*jobs=*/1, seed));
  summary.digest = hash.value();
  return summary;
}

}  // namespace
}  // namespace mvqoe

int main(int argc, char** argv) {
  using namespace mvqoe;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const campaign::PolicyCompareSpec spec = bench_spec(smoke);
  const std::uint64_t groups = campaign::policy_total_units(spec);
  const int reps = smoke ? 2 : 3;

  double best_groups_per_sec = 0.0;
  double best_wall_s = 0.0;
  std::uint64_t digest = 0;
  bool digest_stable = true;
  std::vector<LaneSummary> lanes;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const campaign::PolicyCompareResult result =
        campaign::run_policy_compare(spec, campaign::CampaignOptions{});
    const double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                              .count();
    if (!result.campaign.complete) {
      std::fprintf(stderr, "FAIL: policy compare campaign did not complete\n");
      return 1;
    }
    if (r == 0) {
      digest = result.digest;
      lanes.clear();
      for (const campaign::PolicyLane& lane : result.lanes) {
        lanes.push_back(summarize(lane, spec.base.runs, spec.base.seed));
      }
    } else if (result.digest != digest) {
      digest_stable = false;
    }
    const double groups_per_sec = static_cast<double>(groups) / wall_s;
    if (groups_per_sec > best_groups_per_sec) {
      best_groups_per_sec = groups_per_sec;
      best_wall_s = wall_s;
    }
  }

  std::printf("policy compare %8.1f groups/s  wall %.3fs  %llu groups  digest=%016llx (%s)\n",
              best_groups_per_sec, best_wall_s, static_cast<unsigned long long>(groups),
              static_cast<unsigned long long>(digest),
              digest_stable ? "stable" : "UNSTABLE");
  bool lanes_distinct = true;
  for (std::size_t a = 0; a < lanes.size(); ++a) {
    for (std::size_t b = a + 1; b < lanes.size(); ++b) {
      if (lanes[a].digest == lanes[b].digest) {
        lanes_distinct = false;
        std::fprintf(stderr, "FAIL: lanes '%s' and '%s' produced identical grids\n",
                     lanes[a].policy.c_str(), lanes[b].policy.c_str());
      }
    }
  }
  for (const LaneSummary& lane : lanes) {
    std::printf("  %-12s drop %8.4f%%  crash %6.2f%%  peak PSS %7.2f MB  lane=%016llx\n",
                lane.policy.c_str(), lane.drop_percent, lane.crash_percent, lane.peak_pss_mb,
                static_cast<unsigned long long>(lane.digest));
  }

  runner::JsonWriter json;
  json.begin_object()
      .field("bench", "policy")
      .field("smoke", smoke)
      .field("reps", reps)
      .field("target_groups_per_sec", 75.0);
  json.key("config").begin_object()
      .field("family", spec.base.family)
      .field("duration_s", spec.base.duration_s)
      .field("runs", spec.base.runs)
      .field("seed", spec.base.seed)
      .field("groups", groups)
      .field("policies", spec.policies.size())
      .end_object();
  json.key("compare").begin_object()
      .field("groups_per_sec", best_groups_per_sec)
      .field("wall_s", best_wall_s)
      .field("digest_stable", digest_stable)
      .field("lanes_distinct", lanes_distinct)
      .end_object();
  json.key("lanes").begin_array();
  for (const LaneSummary& lane : lanes) {
    char lane_hex[17];
    std::snprintf(lane_hex, sizeof lane_hex, "%016llx",
                  static_cast<unsigned long long>(lane.digest));
    json.begin_object()
        .field("policy", lane.policy)
        .field("drop_percent", lane.drop_percent)
        .field("crash_percent", lane.crash_percent)
        .field("peak_pss_mb", lane.peak_pss_mb)
        .field("digest", lane_hex)
        .end_object();
  }
  json.end_array();
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  json.field("digest", digest_hex);
  json.end_object();

  const std::string path = runner::bench_json_path("policy");
  if (runner::write_file(path, json.str())) {
    std::printf("machine-readable: %s\n", path.c_str());
  }

  if (!digest_stable) {
    std::fprintf(stderr, "FAIL: compare digest varied across repetitions\n");
    return 1;
  }
  if (!lanes_distinct) return 1;
  if (smoke && !MVQOE_BENCH_SANITIZED) {
    // Regression tripwire: the reference 1-core box sustains ~75-85
    // groups/sec on the smoke grid; a fifth of that means a per-group
    // cost regression (policy factory churn in the world loop, a
    // reclaim plan allocation storm, ...).
    if (best_groups_per_sec < 15.0) {
      std::fprintf(stderr, "FAIL: policy compare throughput %.1f groups/sec < 15 floor\n",
                   best_groups_per_sec);
      return 1;
    }
  }
  return 0;
}
